#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "tensor/tensor_ops.h"

namespace kt {
namespace nn {
namespace {

TEST(LinearTest, ShapePreservesLeadingDims) {
  Rng rng(1);
  Linear linear(4, 3, rng);
  ag::Variable x = ag::Constant(Tensor::Uniform({2, 5, 4}, -1, 1, rng));
  ag::Variable y = linear.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 3}));
}

TEST(LinearTest, MatchesManualComputation) {
  Rng rng(2);
  Linear linear(2, 1, rng);
  auto params = linear.Parameters();
  ASSERT_EQ(params.size(), 2u);  // weight, bias
  Tensor w = params[0].value();
  Tensor b = params[1].value();
  ag::Variable x = ag::Constant(Tensor({1, 2}, {3.0f, -1.0f}));
  float expected = 3.0f * w.at({0, 0}) - 1.0f * w.at({1, 0}) + b.flat(0);
  EXPECT_NEAR(linear.Forward(x).value().item(), expected, 1e-5f);
}

TEST(LinearTest, GradCheck) {
  Rng rng(3);
  Linear linear(3, 2, rng);
  Tensor x = Tensor::Uniform({4, 3}, -1, 1, rng);
  std::vector<ag::Variable> params = linear.Parameters();
  ag::GradCheckResult result = ag::CheckGradients(
      [&](const std::vector<ag::Variable>&) {
        return ag::SumAll(linear.Forward(ag::Constant(x)));
      },
      params);
  EXPECT_TRUE(result.ok) << result.max_abs_error;
}

TEST(ModuleTest, ParameterCollectionAndNames) {
  Rng rng(4);
  Linear linear(3, 2, rng);
  EXPECT_EQ(linear.NumParameters(), 3 * 2 + 2);
  auto names = linear.ParameterNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "weight");
  EXPECT_EQ(names[1], "bias");
}

TEST(ModuleTest, StateCloneRoundTrip) {
  Rng rng(5);
  Linear linear(2, 2, rng);
  std::vector<Tensor> saved = linear.StateClone();
  linear.Parameters()[0].mutable_value().Fill(99.0f);
  linear.SetState(saved);
  EXPECT_TRUE(linear.Parameters()[0].value().AllClose(saved[0]));
}

TEST(EmbeddingTest, LookupAndShape) {
  Rng rng(6);
  Embedding emb(10, 4, rng);
  ag::Variable out = emb.Forward({3, 3, 7});
  EXPECT_EQ(out.shape(), (Shape{3, 4}));
  // Identical indices give identical rows.
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(out.value().at({0, c}), out.value().at({1, c}));
  }
}

TEST(LayerNormTest, NormalizesLastDim) {
  Rng rng(7);
  LayerNorm norm(6);
  ag::Variable x = ag::Constant(Tensor::Uniform({3, 6}, -4, 4, rng));
  Tensor y = norm.Forward(x).value();
  for (int64_t r = 0; r < 3; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int64_t c = 0; c < 6; ++c) mean += y.at({r, c});
    mean /= 6.0f;
    for (int64_t c = 0; c < 6; ++c)
      var += (y.at({r, c}) - mean) * (y.at({r, c}) - mean);
    var /= 6.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);  // gamma=1, beta=0 initially
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(8);
  LayerNorm norm(4);
  Tensor x = Tensor::Uniform({2, 4}, -2, 2, rng);
  Tensor w = Tensor::Uniform({2, 4}, -1, 1, rng);
  std::vector<ag::Variable> params = norm.Parameters();
  ag::GradCheckResult result = ag::CheckGradients(
      [&](const std::vector<ag::Variable>&) {
        return ag::SumAll(
            ag::Mul(norm.Forward(ag::Constant(x)), ag::Constant(w)));
      },
      params);
  EXPECT_TRUE(result.ok) << result.max_abs_error;
}

TEST(LstmTest, OutputShapeAndCausality) {
  Rng rng(9);
  LSTM lstm(3, 5, rng);
  Tensor x = Tensor::Uniform({2, 4, 3}, -1, 1, rng);
  nn::Context ctx;
  ag::Variable out = lstm.Forward(ag::Constant(x));
  EXPECT_EQ(out.shape(), (Shape{2, 4, 5}));

  // Causality: changing x at t=3 must not affect outputs at t<3.
  Tensor x2 = x.Clone();
  x2.at({0, 3, 0}) += 10.0f;
  ag::Variable out2 = lstm.Forward(ag::Constant(x2));
  EXPECT_TRUE(out2.value()
                  .Slice(1, 0, 3)
                  .AllClose(out.value().Slice(1, 0, 3)));
  // ...but does affect t=3.
  EXPECT_FALSE(out2.value()
                   .Slice(1, 3, 4)
                   .AllClose(out.value().Slice(1, 3, 4)));
  (void)ctx;
}

TEST(LstmTest, ReverseProcessesRightToLeft) {
  Rng rng(10);
  LSTM lstm(2, 3, rng);
  Tensor x = Tensor::Uniform({1, 5, 2}, -1, 1, rng);
  ag::Variable out = lstm.Forward(ag::Constant(x), /*reverse=*/true);
  // Anticausality: changing x at t=0 must not affect outputs at t>0.
  Tensor x2 = x.Clone();
  x2.at({0, 0, 1}) += 5.0f;
  ag::Variable out2 = lstm.Forward(ag::Constant(x2), /*reverse=*/true);
  EXPECT_TRUE(out2.value()
                  .Slice(1, 1, 5)
                  .AllClose(out.value().Slice(1, 1, 5)));
  EXPECT_FALSE(out2.value()
                   .Slice(1, 0, 1)
                   .AllClose(out.value().Slice(1, 0, 1)));
}

TEST(LstmTest, GradFlowsThroughTime) {
  Rng rng(11);
  LSTM lstm(2, 3, rng);
  Tensor x = Tensor::Uniform({1, 6, 2}, -1, 1, rng);
  lstm.ZeroGrad();
  ag::SumAll(lstm.Forward(ag::Constant(x))).Backward();
  // Every parameter receives some gradient.
  for (const auto& p : lstm.Parameters()) {
    float norm = 0.0f;
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) norm += std::fabs(g.flat(i));
    EXPECT_GT(norm, 0.0f);
  }
}

TEST(AttentionMaskTest, Kinds) {
  Tensor causal = MakeAttentionMask(3, AttentionMaskKind::kCausalStrict);
  EXPECT_FLOAT_EQ(causal.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(causal.at({2, 1}), 1.0f);
  EXPECT_FLOAT_EQ(causal.at({1, 2}), 0.0f);

  Tensor inclusive = MakeAttentionMask(3, AttentionMaskKind::kCausalInclusive);
  EXPECT_FLOAT_EQ(inclusive.at({1, 1}), 1.0f);
  EXPECT_FLOAT_EQ(inclusive.at({1, 2}), 0.0f);

  Tensor anti = MakeAttentionMask(3, AttentionMaskKind::kAntiCausalInclusive);
  EXPECT_FLOAT_EQ(anti.at({1, 0}), 0.0f);
  EXPECT_FLOAT_EQ(anti.at({1, 2}), 1.0f);

  Tensor no_self = MakeAttentionMask(3, AttentionMaskKind::kBidirectionalNoSelf);
  EXPECT_FLOAT_EQ(no_self.at({1, 1}), 0.0f);
  EXPECT_FLOAT_EQ(no_self.at({1, 0}), 1.0f);
}

TEST(AttentionTest, OutputShapeAndMaskRespected) {
  Rng rng(12);
  MultiHeadAttention attn(8, 2, 0.0f, /*monotonic=*/false, rng);
  Tensor x = Tensor::Uniform({2, 4, 8}, -1, 1, rng);
  Context ctx;
  Tensor mask = MakeAttentionMask(4, AttentionMaskKind::kCausalStrict);
  std::vector<Tensor> attention;
  ag::Variable q = ag::Constant(x);
  ag::Variable out = attn.Forward(q, q, q, mask, ctx, &attention);
  EXPECT_EQ(out.shape(), (Shape{2, 4, 8}));
  ASSERT_EQ(attention.size(), 2u);  // one map per head
  // Blocked entries have zero probability; row 0 attends to nothing.
  for (const Tensor& a : attention) {
    for (int64_t b = 0; b < 2; ++b) {
      for (int64_t i = 0; i < 4; ++i) {
        for (int64_t j = 0; j < 4; ++j) {
          if (j >= i) EXPECT_FLOAT_EQ(a.at({b, i, j}), 0.0f);
        }
      }
    }
  }
}

TEST(AttentionTest, ProbabilitiesSumToOneOnAllowedRows) {
  Rng rng(13);
  MultiHeadAttention attn(8, 2, 0.0f, /*monotonic=*/false, rng);
  Tensor x = Tensor::Uniform({1, 5, 8}, -1, 1, rng);
  Context ctx;
  Tensor mask = MakeAttentionMask(5, AttentionMaskKind::kBidirectionalNoSelf);
  std::vector<Tensor> attention;
  ag::Variable q = ag::Constant(x);
  attn.Forward(q, q, q, mask, ctx, &attention);
  for (int64_t i = 0; i < 5; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 5; ++j) total += attention[0].at({0, i, j});
    EXPECT_NEAR(total, 1.0f, 1e-4f);
    EXPECT_FLOAT_EQ(attention[0].at({0, i, i}), 0.0f);
  }
}

TEST(AttentionTest, MonotonicDecayLowersDistantScores) {
  Rng rng(14);
  MultiHeadAttention attn(4, 1, 0.0f, /*monotonic=*/true, rng);
  // Force a large decay parameter.
  for (auto& p : attn.Parameters()) {
    if (p.shape() == Shape{1}) p.mutable_value().Fill(5.0f);
  }
  // Identical keys at all positions: attention differences come only from
  // the distance penalty, so nearer positions get more weight.
  Tensor x = Tensor::Ones({1, 6, 4});
  Context ctx;
  Tensor mask = MakeAttentionMask(6, AttentionMaskKind::kCausalStrict);
  std::vector<Tensor> attention;
  ag::Variable q = ag::Constant(x);
  attn.Forward(q, q, q, mask, ctx, &attention);
  // Row 5: weight at j=4 (distance 1) > weight at j=0 (distance 5).
  EXPECT_GT(attention[0].at({0, 5, 4}), attention[0].at({0, 5, 0}));
}

TEST(TransformerBlockTest, ShapeAndGradient) {
  Rng rng(15);
  TransformerBlock block(8, 2, 0.0f, /*monotonic=*/false, rng);
  Tensor x = Tensor::Uniform({2, 3, 8}, -1, 1, rng);
  Context ctx;
  Tensor mask = MakeAttentionMask(3, AttentionMaskKind::kFull);
  block.ZeroGrad();
  ag::Variable out = block.Forward(ag::Constant(x), mask, ctx);
  EXPECT_EQ(out.shape(), (Shape{2, 3, 8}));
  ag::SumAll(out).Backward();
  float total = 0.0f;
  for (const auto& p : block.Parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) total += std::fabs(g.flat(i));
  }
  EXPECT_GT(total, 0.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||x - target||^2.
  Rng rng(16);
  ag::Variable x = ag::Variable::Leaf(Tensor::Uniform({4}, -2, 2, rng), true);
  Tensor target({4}, {1.0f, -2.0f, 0.5f, 3.0f});
  AdamOptions options;
  options.lr = 0.1f;
  options.clip_norm = 0.0f;
  Adam adam({x}, options);
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    ag::Variable diff = ag::Sub(x, ag::Constant(target));
    ag::SumAll(ag::Mul(diff, diff)).Backward();
    adam.Step();
  }
  EXPECT_TRUE(x.value().AllClose(target, 1e-2f, 1e-2f));
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  ag::Variable x = ag::Variable::Leaf(Tensor::Full({2}, 5.0f), true);
  AdamOptions options;
  options.lr = 0.05f;
  options.weight_decay = 1.0f;
  Adam adam({x}, options);
  for (int step = 0; step < 250; ++step) {
    adam.ZeroGrad();
    // Zero data loss: only decay acts.
    ag::MulScalar(ag::SumAll(x), 0.0f).Backward();
    adam.Step();
  }
  EXPECT_LT(std::fabs(x.value().flat(0)), 1.0f);
}

TEST(AdamTest, GradNormAndClipping) {
  ag::Variable x = ag::Variable::Leaf(Tensor::Full({4}, 1.0f), true);
  AdamOptions options;
  options.lr = 1.0f;
  options.clip_norm = 0.1f;
  Adam adam({x}, options);
  adam.ZeroGrad();
  ag::MulScalar(ag::SumAll(x), 100.0f).Backward();
  EXPECT_NEAR(adam.GradNorm(), 200.0f, 1e-2f);  // sqrt(4 * 100^2)
  Tensor before = x.value().Clone();
  adam.Step();
  // First Adam step magnitude is ~lr regardless of clip, but clipping must
  // not blow up; just check the update is finite and moved opposite grad.
  EXPECT_LT(x.value().flat(0), before.flat(0));
}

TEST(LossTest, BceWithLogitsMatchesManual) {
  // Single element: x = 0.3, y = 1 -> loss = log(1 + e^{-0.3}).
  ag::Variable logits = ag::Variable::Leaf(Tensor({1}, {0.3f}), true);
  Tensor y({1}, {1.0f});
  Tensor mask = Tensor::Ones({1});
  ag::Variable loss = BinaryCrossEntropyWithLogits(logits, y, mask);
  EXPECT_NEAR(loss.value().item(), std::log(1.0f + std::exp(-0.3f)), 1e-5f);
}

TEST(LossTest, BceMaskExcludesPositions) {
  ag::Variable logits =
      ag::Variable::Leaf(Tensor({3}, {10.0f, -10.0f, 0.0f}), true);
  Tensor targets({3}, {0.0f, 1.0f, 1.0f});  // first two are maximally wrong
  Tensor mask({3}, {0.0f, 0.0f, 1.0f});
  ag::Variable loss = BinaryCrossEntropyWithLogits(logits, targets, mask);
  // Only the third element contributes: log(2).
  EXPECT_NEAR(loss.value().item(), std::log(2.0f), 1e-4f);
}

TEST(LossTest, BceWithLogitsStableAtExtremes) {
  ag::Variable logits =
      ag::Variable::Leaf(Tensor({2}, {80.0f, -80.0f}), true);
  Tensor targets({2}, {1.0f, 0.0f});
  Tensor mask = Tensor::Ones({2});
  ag::Variable loss = BinaryCrossEntropyWithLogits(logits, targets, mask);
  EXPECT_TRUE(std::isfinite(loss.value().item()));
  EXPECT_NEAR(loss.value().item(), 0.0f, 1e-4f);
  loss.Backward();
  EXPECT_TRUE(std::isfinite(logits.grad().flat(0)));
}

TEST(LossTest, BceFromProbsAgreesWithLogitsForm) {
  Rng rng(17);
  Tensor raw = Tensor::Uniform({6}, -2, 2, rng);
  Tensor targets({6}, {1, 0, 1, 1, 0, 0});
  Tensor mask = Tensor::Ones({6});
  ag::Variable logits = ag::Variable::Leaf(raw, true);
  ag::Variable from_logits =
      BinaryCrossEntropyWithLogits(logits, targets, mask);
  ag::Variable probs = ag::Sigmoid(ag::Variable::Leaf(raw, true));
  ag::Variable from_probs = BinaryCrossEntropyFromProbs(probs, targets, mask);
  EXPECT_NEAR(from_logits.value().item(), from_probs.value().item(), 1e-4f);
}

TEST(LossTest, GradCheckBothForms) {
  Rng rng(18);
  Tensor targets({4}, {1, 0, 0, 1});
  Tensor mask({4}, {1, 1, 0, 1});
  std::vector<ag::Variable> params{
      ag::Variable::Leaf(Tensor::Uniform({4}, -1.5f, 1.5f, rng), true)};
  ag::GradCheckResult r1 = ag::CheckGradients(
      [&](const std::vector<ag::Variable>& p) {
        return BinaryCrossEntropyWithLogits(p[0], targets, mask);
      },
      params);
  EXPECT_TRUE(r1.ok) << r1.max_abs_error;

  std::vector<ag::Variable> params2{
      ag::Variable::Leaf(Tensor::Uniform({4}, 0.2f, 0.8f, rng), true)};
  ag::GradCheckResult r2 = ag::CheckGradients(
      [&](const std::vector<ag::Variable>& p) {
        return BinaryCrossEntropyFromProbs(p[0], targets, mask);
      },
      params2);
  EXPECT_TRUE(r2.ok) << r2.max_abs_error;
}

// ---- Fused-vs-composed module paths (DESIGN.md §9) ----
//
// The fused forward paths behind SetFusedOpsEnabled must match the composed
// op-per-node graphs bit-for-bit, values and parameter gradients included
// where the graph structure is unchanged (values always; here we assert
// values, which is the contract the golden influence tests rely on).

class FusedToggleTest : public ::testing::Test {
 protected:
  void TearDown() override { SetFusedOpsEnabled(true); }

  static bool BitEqual(const Tensor& a, const Tensor& b) {
    return a.SameShape(b) &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) * static_cast<size_t>(a.numel())) == 0;
  }
};

TEST_F(FusedToggleTest, LinearForwardActMatchesComposed) {
  Rng rng(31);
  Linear linear(6, 4, rng);
  ag::Variable x = ag::Constant(Tensor::Uniform({3, 5, 6}, -1, 1, rng));
  for (ag::Act act : {ag::Act::kIdentity, ag::Act::kRelu, ag::Act::kSigmoid,
                      ag::Act::kTanh}) {
    SetFusedOpsEnabled(true);
    ag::Variable fused = linear.ForwardAct(x, act);
    SetFusedOpsEnabled(false);
    ag::Variable composed = linear.ForwardAct(x, act);
    EXPECT_TRUE(BitEqual(fused.value(), composed.value()))
        << "act=" << static_cast<int>(act);
  }
}

TEST_F(FusedToggleTest, LstmForwardMatchesComposed) {
  Rng rng(32);
  LSTM lstm(3, 5, rng);
  Tensor x = Tensor::Uniform({2, 6, 3}, -1, 1, rng);
  SetFusedOpsEnabled(true);
  ag::Variable fused = lstm.Forward(ag::Constant(x));
  SetFusedOpsEnabled(false);
  ag::Variable composed = lstm.Forward(ag::Constant(x));
  EXPECT_TRUE(BitEqual(fused.value(), composed.value()));
}

TEST_F(FusedToggleTest, GruForwardMatchesComposed) {
  Rng rng(33);
  GRU gru(3, 5, rng);
  Tensor x = Tensor::Uniform({2, 6, 3}, -1, 1, rng);
  SetFusedOpsEnabled(true);
  ag::Variable fused = gru.Forward(ag::Constant(x));
  SetFusedOpsEnabled(false);
  ag::Variable composed = gru.Forward(ag::Constant(x));
  EXPECT_TRUE(BitEqual(fused.value(), composed.value()));
}

}  // namespace
}  // namespace nn
}  // namespace kt
