#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include <gtest/gtest.h>

#include "data/simulator.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "eval/ttest.h"
#include "models/dkt.h"

namespace kt {
namespace eval {
namespace {

TEST(AucTest, PerfectAndInvertedRanking) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.2f, 0.8f, 0.9f}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(ComputeAuc({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}), 0.0);
}

TEST(AucTest, RandomScoresGiveHalf) {
  Rng rng(3);
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform()));
    labels.push_back(rng.Bernoulli(0.4) ? 1 : 0);
  }
  EXPECT_NEAR(ComputeAuc(scores, labels), 0.5, 0.02);
}

TEST(AucTest, TiesGetMidranks) {
  // Two positives and two negatives all tied -> AUC 0.5 exactly.
  EXPECT_DOUBLE_EQ(ComputeAuc({0.5f, 0.5f, 0.5f, 0.5f}, {0, 1, 0, 1}), 0.5);
}

TEST(AucTest, DegenerateClassesReturnHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.9f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({}, {}), 0.5);
}

TEST(AucTest, InvariantUnderMonotoneTransform) {
  Rng rng(5);
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const float s = static_cast<float>(rng.Uniform(-3, 3));
    scores.push_back(s);
    labels.push_back(rng.Bernoulli(1.0 / (1.0 + std::exp(-s))) ? 1 : 0);
  }
  std::vector<float> transformed;
  for (float s : scores) {
    transformed.push_back(1.0f / (1.0f + std::exp(-s)));  // sigmoid
  }
  EXPECT_NEAR(ComputeAuc(scores, labels), ComputeAuc(transformed, labels),
              1e-9);
}

// Regression: a NaN score voids the strict weak ordering required by the
// std::sort comparator inside ComputeAuc (UB, silently corrupted rankings);
// an Inf score means the model diverged. Both must abort with a diagnostic
// instead of returning a garbage AUC.
TEST(AucTest, NonFiniteScoresDie) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_DEATH(ComputeAuc({0.2f, nan, 0.8f}, {0, 1, 1}), "non-finite");
  EXPECT_DEATH(ComputeAuc({0.2f, inf, 0.8f}, {0, 1, 1}), "non-finite");
  EXPECT_DEATH(ComputeAuc({-inf, 0.5f}, {0, 1}), "non-finite");
  MetricAccumulator acc;
  acc.AddOne(0.5f, 1);  // finite scores are fine
  EXPECT_DEATH(acc.AddOne(nan, 0), "non-finite");
}

// Property: AUC and ACC are functions of the (score, label) multiset, so
// any permutation of the inputs — including tie-heavy vectors, where the
// sort order between equal scores is arbitrary — must give the same value.
class MetricPermutationProperty : public ::testing::TestWithParam<int> {};

TEST_P(MetricPermutationProperty, AucAccInvariantUnderPermutation) {
  Rng rng(static_cast<uint64_t>(100 + GetParam()));
  const int n = 50 + static_cast<int>(rng.UniformInt(200));
  // Quantize scores onto a handful of levels so ties are plentiful.
  const int levels = 1 + static_cast<int>(rng.UniformInt(6));
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const float q = static_cast<float>(rng.UniformInt(levels + 1)) /
                    static_cast<float>(levels);
    scores.push_back(q);
    labels.push_back(rng.Bernoulli(0.3 + 0.4 * q) ? 1 : 0);
  }
  const double auc = ComputeAuc(scores, labels);
  const double acc = ComputeAcc(scores, labels);

  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int trial = 0; trial < 4; ++trial) {
    rng.Shuffle(order);
    std::vector<float> shuffled_scores;
    std::vector<int> shuffled_labels;
    MetricAccumulator acc_shuffled;
    for (size_t idx : order) {
      shuffled_scores.push_back(scores[idx]);
      shuffled_labels.push_back(labels[idx]);
      acc_shuffled.AddOne(scores[idx], labels[idx]);
    }
    EXPECT_DOUBLE_EQ(ComputeAuc(shuffled_scores, shuffled_labels), auc);
    EXPECT_DOUBLE_EQ(ComputeAcc(shuffled_scores, shuffled_labels), acc);
    // The accumulator is just a recorder: same multiset, same metrics.
    EXPECT_DOUBLE_EQ(acc_shuffled.Auc(), auc);
    EXPECT_DOUBLE_EQ(acc_shuffled.Acc(), acc);
  }
}

TEST_P(MetricPermutationProperty, AllTiedScoresGiveHalfAuc) {
  Rng rng(static_cast<uint64_t>(200 + GetParam()));
  std::vector<float> scores;
  std::vector<int> labels;
  int positives = 0;
  for (int i = 0; i < 64; ++i) {
    scores.push_back(0.5f);
    const int y = rng.Bernoulli(0.5) ? 1 : 0;
    positives += y;
    labels.push_back(y);
  }
  if (positives == 0 || positives == 64) return;  // degenerate, returns 0.5 too
  EXPECT_DOUBLE_EQ(ComputeAuc(scores, labels), 0.5);
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, MetricPermutationProperty,
                         ::testing::Range(0, 8));

TEST(AccTest, ThresholdBehaviour) {
  const std::vector<float> scores = {0.4f, 0.6f, 0.5f};
  const std::vector<int> labels = {0, 1, 1};
  EXPECT_DOUBLE_EQ(ComputeAcc(scores, labels), 1.0);  // 0.5 counts as positive
  EXPECT_DOUBLE_EQ(ComputeAcc(scores, labels, 0.7), 1.0 / 3.0);
}

TEST(MetricAccumulatorTest, MaskedAdd) {
  MetricAccumulator acc;
  Tensor probs({2, 2}, {0.9f, 0.1f, 0.8f, 0.3f});
  Tensor targets({2, 2}, {1, 0, 1, 1});
  Tensor mask({2, 2}, {1, 1, 1, 0});
  acc.Add(probs, targets, mask);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_DOUBLE_EQ(acc.Auc(), 1.0);
  EXPECT_DOUBLE_EQ(acc.Acc(), 1.0);
}

TEST(IncompleteBetaTest, KnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(IncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-9);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(IncompleteBeta(2.0, 2.0, 0.4), 0.4 * 0.4 * (3 - 0.8), 1e-9);
  EXPECT_DOUBLE_EQ(IncompleteBeta(3.0, 5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(IncompleteBeta(3.0, 5.0, 1.0), 1.0);
}

TEST(WelchTTestTest, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {0.5, 0.51, 0.49, 0.5};
  const auto result = WelchTTest(a, a);
  EXPECT_NEAR(result.t_statistic, 0.0, 1e-12);
  EXPECT_GT(result.p_value, 0.9);
}

TEST(WelchTTestTest, ClearlySeparatedSamplesSignificant) {
  const std::vector<double> a = {0.80, 0.81, 0.79, 0.80, 0.82};
  const std::vector<double> b = {0.70, 0.71, 0.69, 0.70, 0.72};
  const auto result = WelchTTest(a, b);
  EXPECT_GT(result.t_statistic, 5.0);
  EXPECT_LT(result.p_value, 0.01);
}

TEST(WelchTTestTest, MatchesReferenceImplementation) {
  // Hand-computed reference: a = [1..5], b = [2,4,6,8,10]:
  // mean 3 vs 6, var 2.5 vs 10, se^2 = 2.5, t = -3/sqrt(2.5) = -1.8974,
  // Welch df = 6.25/1.0625 = 5.882, two-sided p ~ 0.1075.
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  const auto result = WelchTTest(a, b);
  EXPECT_NEAR(result.t_statistic, -1.8974, 1e-3);
  EXPECT_NEAR(result.degrees_of_freedom, 5.882, 1e-2);
  EXPECT_NEAR(result.p_value, 0.1075, 2e-3);
}

TEST(TrainerTest, EarlyStoppingRestoresBestEpoch) {
  data::SimulatorConfig config;
  config.num_students = 50;
  config.num_questions = 30;
  config.num_concepts = 4;
  config.min_responses = 10;
  config.max_responses = 20;
  config.seed = 3;
  data::StudentSimulator sim(config);
  data::Dataset ds = sim.Generate();
  Rng rng(5);
  const auto folds =
      data::KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(ds, folds, 0, 0.2, rng);

  models::NeuralConfig nc;
  nc.dim = 8;
  nc.lr = 5e-3f;
  models::DKT model(ds.num_questions, ds.num_concepts, nc);
  TrainOptions options;
  options.max_epochs = 12;
  options.patience = 3;
  options.batch_size = 16;
  TrainResult result = TrainAndEvaluate(model, split, options);

  EXPECT_GE(result.best_epoch, 0);
  EXPECT_LE(result.epochs_run, options.max_epochs);
  // The recorded best validation AUC is the max of the history.
  double max_val = 0.0;
  for (double v : result.val_auc_history) max_val = std::max(max_val, v);
  EXPECT_DOUBLE_EQ(result.best_val_auc, max_val);
  // Early stopping fired no later than best + patience.
  EXPECT_LE(result.epochs_run,
            result.best_epoch + options.patience + 1);
}

TEST(CrossValidationTest, ProducesOneResultPerFold) {
  data::SimulatorConfig config;
  config.num_students = 40;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 8;
  config.max_responses = 16;
  config.seed = 4;
  data::StudentSimulator sim(config);
  data::Dataset ds = sim.Generate();

  TrainOptions options;
  options.max_epochs = 2;
  options.patience = 2;
  options.batch_size = 16;
  ModelFactory factory =
      [](const data::Dataset& train) -> std::unique_ptr<models::KTModel> {
    models::NeuralConfig nc;
    nc.dim = 8;
    return std::make_unique<models::DKT>(train.num_questions,
                                         train.num_concepts, nc);
  };
  const auto cv = RunCrossValidation(ds, 3, factory, options);
  EXPECT_EQ(cv.fold_auc.size(), 3u);
  EXPECT_EQ(cv.fold_acc.size(), 3u);
  double mean = 0.0;
  for (double v : cv.fold_auc) mean += v;
  EXPECT_NEAR(cv.auc_mean, mean / 3.0, 1e-12);
  EXPECT_GE(cv.auc_std, 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace kt
