// Tests for the sharded serving engine (serve/shard.h) and the cold
// session tier (serve/coldtier.h).
//
// The contracts under test:
//   * routing is a pure function of the student id, so a student's whole
//     session lives on exactly one shard;
//   * `stats` summed across shards equals the single-shard numbers;
//   * predictions at any shard count are bitwise identical to one shard;
//   * a cold-tier reload is bitwise identical to the replay rebuild it
//     replaces (for every encoder), and a warm restart resumes sessions
//     from disk without replaying — including after an unflushed teardown
//     (the kill -9 case: eviction-time snapshots are atomic and durable).
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "data/simulator.h"
#include "rckt/encoders.h"
#include "rckt/rckt_model.h"
#include "serve/coldtier.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "serve/shard.h"

namespace kt {
namespace serve {
namespace {

uint32_t Bits(float f) {
  uint32_t u = 0;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

data::Dataset TinyDataset() {
  data::SimulatorConfig config;
  config.num_students = 12;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 10;
  config.max_responses = 18;
  config.seed = 9;
  data::StudentSimulator sim(config);
  return sim.Generate();
}

rckt::RcktConfig SmallConfig(rckt::EncoderKind kind) {
  rckt::RcktConfig config;
  config.encoder = kind;
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.seed = 4;
  return config;
}

ServeRequest Predict(const std::string& student, int64_t question) {
  ServeRequest r;
  r.op = Op::kPredict;
  r.student = student;
  r.question = question;
  r.has_concepts = true;
  r.concepts = {question % 4};
  return r;
}

ServeRequest Update(const std::string& student, int64_t question,
                    int response) {
  ServeRequest r = Predict(student, question);
  r.op = Op::kUpdate;
  r.response = response;
  return r;
}

std::string MakeTempDir() {
  std::string path = ::testing::TempDir() + "kt_cold_XXXXXX";
  EXPECT_NE(::mkdtemp(path.data()), nullptr);
  return path;
}

// Deterministic mixed traffic over `num_students` synthetic students:
// interleaved updates and predicts driven by a fixed LCG.
std::vector<ServeRequest> MixedTraffic(int num_students, int steps) {
  std::vector<ServeRequest> out;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  auto next = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  for (int i = 0; i < steps; ++i) {
    const std::string student = "s" + std::to_string(next() % num_students);
    const int64_t question = static_cast<int64_t>(next() % 25);
    if (next() % 3 == 0) {
      out.push_back(Predict(student, question));
    } else {
      out.push_back(Update(student, question, static_cast<int>(next() % 2)));
    }
  }
  return out;
}

// ---- routing ----

TEST(ShardRoutingTest, IsDeterministicAndInRange) {
  for (uint32_t shards : {1u, 2u, 8u, 13u}) {
    for (int i = 0; i < 100; ++i) {
      const std::string student = "student-" + std::to_string(i);
      const uint32_t shard = ShardSet::ShardFor(student, shards);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(shard, ShardSet::ShardFor(student, shards))
          << "routing must be a pure function of the id";
    }
  }
  // The hash must actually spread students (no degenerate constant).
  std::vector<int> hit(8, 0);
  for (int i = 0; i < 256; ++i) {
    ++hit[ShardSet::ShardFor("u" + std::to_string(i), 8)];
  }
  for (int shard = 0; shard < 8; ++shard) {
    EXPECT_GT(hit[shard], 0) << "shard " << shard << " never selected";
  }
}

TEST(ShardSetTest, EachStudentLivesOnExactlyItsHashShard) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  ShardSetOptions options;
  options.shards = 4;
  options.engine.num_questions = ds.num_questions;
  options.engine.num_concepts = ds.num_concepts;
  ShardSet shards(model, options, nullptr);
  for (int i = 0; i < 16; ++i) {
    const std::string student = "st" + std::to_string(i);
    ASSERT_TRUE(shards.SubmitSync(Update(student, i % 25, i % 2)).ok);
  }
  shards.Stop();
  for (int i = 0; i < 16; ++i) {
    const std::string student = "st" + std::to_string(i);
    const uint32_t owner = shards.shard_for(student);
    for (int shard = 0; shard < 4; ++shard) {
      // Find() is non-const (it does not touch LRU order, but the store
      // only hands out mutable sessions); tests may cast.
      Session* found =
          const_cast<SessionStore&>(shards.engine(shard).sessions())
              .Find(student);
      if (shard == static_cast<int>(owner)) {
        EXPECT_NE(found, nullptr)
            << student << " missing from its owning shard " << owner;
      } else {
        EXPECT_EQ(found, nullptr)
            << student << " leaked onto shard " << shard;
      }
    }
  }
}

// ---- cross-shard stats ----

TEST(ShardSetTest, StatsSumAcrossShardsMatchesSingleShard) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  const std::vector<ServeRequest> traffic = MixedTraffic(10, 120);

  auto run = [&](int num_shards) {
    ShardSetOptions options;
    options.shards = num_shards;
    options.engine.num_questions = ds.num_questions;
    options.engine.num_concepts = ds.num_concepts;
    ShardSet shards(model, options, nullptr);
    for (const ServeRequest& request : traffic) {
      EXPECT_TRUE(shards.SubmitSync(request).ok);
    }
    ServeRequest stats;
    stats.op = Op::kStats;
    const ServeResponse summed = shards.SubmitSync(stats);
    // The broadcast-and-sum payload must equal the counters read directly
    // off each shard's SessionStore — nothing dropped, nothing double
    // counted. (Stop first: engine access is only safe with no traffic.)
    shards.Stop();
    int64_t sessions = 0;
    int64_t state_bytes = 0;
    int64_t history_bytes = 0;
    int64_t evictions = 0;
    for (int shard = 0; shard < num_shards; ++shard) {
      const SessionStore& store = shards.engine(shard).sessions();
      sessions += static_cast<int64_t>(store.size());
      state_bytes += static_cast<int64_t>(store.total_state_bytes());
      history_bytes += static_cast<int64_t>(store.total_history_bytes());
      evictions += static_cast<int64_t>(store.evictions());
    }
    EXPECT_EQ(summed.sessions, sessions);
    EXPECT_EQ(summed.state_bytes, state_bytes);
    EXPECT_EQ(summed.history_bytes, history_bytes)
        << "stats sum dropped a shard's history bytes";
    EXPECT_EQ(summed.evictions, evictions);
    return summed;
  };

  const ServeResponse one = run(1);
  const ServeResponse four = run(4);
  EXPECT_TRUE(one.ok);
  EXPECT_TRUE(four.ok);
  EXPECT_EQ(one.sessions, four.sessions);
  EXPECT_EQ(one.state_bytes, four.state_bytes)
      << "per-session state bytes do not depend on the shard layout";
  EXPECT_EQ(one.history_bytes, four.history_bytes)
      << "history accounting must not depend on the shard layout";
  EXPECT_EQ(one.evictions, four.evictions);
  EXPECT_GT(one.sessions, 0);
  EXPECT_GT(one.history_bytes, 0) << "updates never charged history bytes";
}

// ---- head-of-line blocking ----

// An O(T) counterfactual op must not convoy in front of O(1) predicts on
// the same shard. The light predict L opens the worker's straggler
// window; the heavy explain A and the light predict B both land inside
// it, so all three are queued when the worker takes its slice. The
// two-lane worker takes the light slice {L, B} plus at most ONE heavy op
// and runs the lights first => delivery L, B, A. The old single FIFO
// delivered L, A, B — B was serialized behind the full counterfactual
// pass, which is exactly the regression this test pins.
TEST(ShardSetTest, HeavyOpsDoNotHeadOfLineBlockPredicts) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  ShardSetOptions options;
  options.shards = 1;  // force every student onto the same worker
  options.batcher.max_batch = 8;
  options.batcher.max_wait_us = 100000;  // wide window: no enqueue races
  options.engine.num_questions = ds.num_questions;
  options.engine.num_concepts = ds.num_concepts;
  ShardSet shards(model, options, nullptr);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<uint64_t> order;
  shards.set_sink([&](uint64_t tag, std::string /*line*/) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
    cv.notify_all();
  });

  // Enough history that the explain is real O(T) work. Fed async so the
  // updates coalesce into full batches instead of each paying the wide
  // straggler window this test configures.
  uint64_t feed_tag = 100;
  for (const char* student : {"hl", "ha", "hb"}) {
    for (int i = 0; i < 30; ++i) {
      shards.SubmitAsync(Update(student, (i * 7) % 25, i % 2), feed_tag++);
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return order.size() == 90; });
    order.clear();
  }

  ServeRequest explain_a = Predict("ha", 5);
  explain_a.op = Op::kExplain;

  shards.SubmitAsync(Predict("hl", 3), 1);
  shards.SubmitAsync(explain_a, 2);
  shards.SubmitAsync(Predict("hb", 4), 3);
  // Same student as the heavy explain: must stay ordered after it even
  // though the lanes split (heavy_pending routing).
  shards.SubmitAsync(Predict("ha", 6), 4);

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return order.size() == 4; });
  }
  auto pos = [&](uint64_t tag) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == tag) return i;
    }
    ADD_FAILURE() << "tag " << tag << " never delivered";
    return order.size();
  };
  EXPECT_LT(pos(3), pos(2))
      << "predict was head-of-line blocked behind another student's explain";
  EXPECT_LT(pos(2), pos(4))
      << "per-student order broken across the lane split";
  shards.Stop();
}

// ---- bitwise parity across shard counts ----

TEST(ShardSetTest, PredictionsAreBitwiseIdenticalAcrossShardCounts) {
  data::Dataset ds = TinyDataset();
  for (const rckt::EncoderKind kind :
       {rckt::EncoderKind::kDKT, rckt::EncoderKind::kSAKT}) {
    rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig(kind));
    const std::vector<ServeRequest> traffic = MixedTraffic(8, 150);

    auto run = [&](int num_shards) {
      ShardSetOptions options;
      options.shards = num_shards;
      options.engine.num_questions = ds.num_questions;
      options.engine.num_concepts = ds.num_concepts;
      ShardSet shards(model, options, nullptr);
      std::vector<uint32_t> bits;
      for (const ServeRequest& request : traffic) {
        const ServeResponse response = shards.SubmitSync(request);
        EXPECT_TRUE(response.ok) << response.error;
        if (request.op == Op::kPredict) bits.push_back(Bits(response.p));
      }
      return bits;
    };

    const std::vector<uint32_t> one = run(1);
    const std::vector<uint32_t> eight = run(8);
    ASSERT_FALSE(one.empty());
    ASSERT_EQ(one.size(), eight.size());
    EXPECT_EQ(one, eight) << rckt::EncoderKindName(kind)
                          << ": sharded serving must be bitwise identical";
  }
}

ServeRequest Recourse(const std::string& student, int64_t question) {
  ServeRequest r = Predict(student, question);
  r.op = Op::kRecourse;
  r.k = 2;
  r.top = 8;
  r.has_insert_questions = true;
  r.insert_questions = {question, (question + 3) % 25};
  return r;
}

// Everything a recourse reply ranks on, flattened so two replies compare
// bitwise: base probability, candidate-set size, and each candidate's
// probability plus its exact intervention list.
std::string RecourseSignature(const ServeResponse& response) {
  std::string s = std::to_string(Bits(response.base_p)) + "|" +
                  std::to_string(response.evaluated);
  for (const Counterfactual& candidate : response.candidates) {
    s += ";" + std::to_string(Bits(candidate.p));
    for (const Intervention& intervention : candidate.interventions) {
      s += intervention.kind == Intervention::Kind::kFlipResponse ? ",f" : ",i";
      s += std::to_string(intervention.position) + ":" +
           std::to_string(intervention.question);
    }
  }
  return s;
}

TEST(ShardSetTest, RecourseIsBitwiseIdenticalAcrossShardCounts) {
  data::Dataset ds = TinyDataset();
  for (const rckt::EncoderKind kind :
       {rckt::EncoderKind::kDKT, rckt::EncoderKind::kSAKT}) {
    rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig(kind));

    // A mixed update/predict stream with a recourse every few steps, on
    // whichever student the stream just touched.
    const std::vector<ServeRequest> base = MixedTraffic(6, 90);
    std::vector<ServeRequest> traffic;
    for (size_t i = 0; i < base.size(); ++i) {
      traffic.push_back(base[i]);
      if (i % 9 == 8) {
        traffic.push_back(Recourse(base[i].student, base[i].question));
      }
    }

    auto run = [&](int num_shards) {
      ShardSetOptions options;
      options.shards = num_shards;
      options.engine.num_questions = ds.num_questions;
      options.engine.num_concepts = ds.num_concepts;
      ShardSet shards(model, options, nullptr);
      std::vector<std::string> signatures;
      for (const ServeRequest& request : traffic) {
        const ServeResponse response = shards.SubmitSync(request);
        EXPECT_TRUE(response.ok) << response.error;
        if (request.op == Op::kRecourse) {
          signatures.push_back(RecourseSignature(response));
        }
      }
      return signatures;
    };

    const std::vector<std::string> one = run(1);
    const std::vector<std::string> eight = run(8);
    ASSERT_FALSE(one.empty());
    ASSERT_EQ(one.size(), eight.size());
    EXPECT_EQ(one, eight)
        << rckt::EncoderKindName(kind)
        << ": recourse rankings must not depend on the shard layout";
  }
}

// ---- cold tier ----

class ColdTierSuite : public ::testing::TestWithParam<rckt::EncoderKind> {};

// Forcing the budget to one byte makes every AccountState evict all other
// sessions, so each touch of a second student demotes the first.
TEST_P(ColdTierSuite, ColdReloadIsBitIdenticalToReplayRebuild) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig(GetParam()));

  auto feed = [&](InferenceEngine& engine) {
    for (int step = 0; step < 6; ++step) {
      for (const char* student : {"a", "b"}) {
        ASSERT_TRUE(
            engine.Execute(Update(student, (step * 5) % 25, step % 2)).ok);
      }
    }
  };

  // Reference: roomy budget, nothing ever evicted.
  EngineOptions reference_options;
  reference_options.num_questions = ds.num_questions;
  reference_options.num_concepts = ds.num_concepts;
  InferenceEngine reference(model, reference_options);
  feed(reference);
  const ServeResponse want = reference.Execute(Predict("a", 7));
  ASSERT_TRUE(want.ok);

  // Replay path: 1-byte budget, no cold tier -> every touch rebuilds.
  EngineOptions replay_options = reference_options;
  replay_options.session_budget_bytes = 1;
  InferenceEngine replayer(model, replay_options);
  feed(replayer);
  const ServeResponse via_replay = replayer.Execute(Predict("a", 7));
  ASSERT_TRUE(via_replay.ok);
  EXPECT_GT(replayer.replays(), 0);
  EXPECT_EQ(replayer.cold_loads(), 0);

  // Cold path: same 1-byte budget, but eviction demotes to disk.
  EngineOptions cold_options = replay_options;
  cold_options.cold_dir = MakeTempDir();
  InferenceEngine cold(model, cold_options);
  feed(cold);
  const ServeResponse via_cold = cold.Execute(Predict("a", 7));
  ASSERT_TRUE(via_cold.ok);
  EXPECT_GT(cold.cold_loads(), 0) << "evictions never reloaded from disk";

  EXPECT_EQ(Bits(want.p), Bits(via_replay.p))
      << rckt::EncoderKindName(GetParam()) << ": replay rebuild diverged";
  EXPECT_EQ(Bits(want.p), Bits(via_cold.p))
      << rckt::EncoderKindName(GetParam())
      << ": cold-tier reload is not bit-identical to the replay rebuild";
}

TEST_P(ColdTierSuite, WarmRestartResumesSessionsWithoutReplay) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig(GetParam()));
  const std::string cold_dir = MakeTempDir();

  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  options.cold_dir = cold_dir;

  ServeRequest explain = Predict("y", 11);
  explain.op = Op::kExplain;

  ServeResponse want;
  ServeResponse want_explained;
  {
    InferenceEngine first(model, options);
    for (int step = 0; step < 5; ++step) {
      for (const char* student : {"x", "y", "z"}) {
        ASSERT_TRUE(
            first.Execute(Update(student, (step * 3) % 25, step % 2)).ok);
      }
    }
    want = first.Execute(Predict("y", 11));
    ASSERT_TRUE(want.ok);
    want_explained = first.Execute(explain);
    ASSERT_TRUE(want_explained.ok) << want_explained.error;
    // Graceful shutdown: persist the resident sessions.
    first.FlushColdSnapshots();
  }

  InferenceEngine second(model, options);
  const ServeResponse got = second.Execute(Predict("y", 11));
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(Bits(want.p), Bits(got.p))
      << rckt::EncoderKindName(GetParam())
      << ": restarted server diverged from the one that never stopped";
  EXPECT_EQ(got.history, want.history) << "history not restored";
  EXPECT_EQ(second.replays(), 0)
      << "warm restart must resume from snapshots, not replay";
  EXPECT_GT(second.cold_loads(), 0);

  // The adopted history also powers explain after the restart, and the
  // full influence breakdown matches the never-restarted engine bitwise.
  const ServeResponse explained = second.Execute(explain);
  ASSERT_TRUE(explained.ok) << explained.error;
  ASSERT_EQ(explained.influence.size(), want_explained.influence.size());
  for (size_t i = 0; i < explained.influence.size(); ++i) {
    EXPECT_EQ(Bits(explained.influence[i]), Bits(want_explained.influence[i]))
        << "influence[" << i << "] diverged after restart";
  }
}

// The kill -9 case: eviction-time snapshots commit atomically, so state
// demoted before the crash survives even though nothing was flushed.
TEST_P(ColdTierSuite, UnflushedTeardownStillRecoversEvictedSessions) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig(GetParam()));
  const std::string cold_dir = MakeTempDir();

  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  options.session_budget_bytes = 1;  // evict (= snapshot) on every touch
  options.cold_dir = cold_dir;

  ServeResponse want;
  {
    InferenceEngine first(model, options);
    for (int step = 0; step < 4; ++step) {
      ASSERT_TRUE(first.Execute(Update("victim", step * 2, 1)).ok);
      ASSERT_TRUE(first.Execute(Update("other", step * 2 + 1, 0)).ok);
    }
    want = first.Execute(Predict("victim", 9));
    ASSERT_TRUE(want.ok);
    // No FlushColdSnapshots: the engine just goes away, like a SIGKILL.
    // "victim"'s state was snapshotted when "other"'s updates evicted it.
  }

  EngineOptions fresh = options;
  fresh.session_budget_bytes = 0;  // roomy restart
  InferenceEngine second(model, fresh);
  const ServeResponse got = second.Execute(Predict("victim", 9));
  ASSERT_TRUE(got.ok);
  EXPECT_GT(second.cold_loads(), 0);
  EXPECT_EQ(second.replays(), 0);
  EXPECT_EQ(Bits(want.p), Bits(got.p))
      << rckt::EncoderKindName(GetParam())
      << ": post-crash recovery diverged from pre-crash state";
}

TEST_P(ColdTierSuite, ResetErasesTheSnapshotWithTheSession) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig(GetParam()));

  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  options.cold_dir = MakeTempDir();

  {
    InferenceEngine first(model, options);
    ASSERT_TRUE(first.Execute(Update("gone", 3, 1)).ok);
    first.FlushColdSnapshots();
    ServeRequest reset;
    reset.op = Op::kReset;
    reset.student = "gone";
    ASSERT_TRUE(first.Execute(reset).ok);
  }

  InferenceEngine second(model, options);
  const ServeResponse got = second.Execute(Predict("gone", 3));
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.history, 0)
      << "a reset student's snapshot must not resurrect its history";
  EXPECT_EQ(second.cold_loads(), 0);
}

TEST(ColdTierTest, StaleSnapshotWithDivergentHistoryIsDropped) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  const std::string cold_dir = MakeTempDir();
  ColdTier tier(cold_dir, model.bi_encoder(), model.config().encoder,
                model.config().dim, model.config().num_layers);

  // Build a real session through the engine so the stream is live.
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);
  ASSERT_TRUE(engine.Execute(Update("s", 1, 1)).ok);
  Session* live = const_cast<SessionStore&>(engine.sessions()).Find("s");
  ASSERT_NE(live, nullptr);
  ASSERT_TRUE(tier.Save(*live));

  // A session whose live history disagrees with the snapshot must miss,
  // and the stale file must be deleted so it cannot resurface.
  Session divergent;
  divergent.id = "s";
  divergent.history.push_back(data::Interaction{2, 0, {1}});
  EXPECT_FALSE(tier.Load(&divergent));
  EXPECT_EQ(divergent.stream, nullptr);

  Session empty;
  empty.id = "s";
  EXPECT_FALSE(tier.Load(&empty)) << "stale snapshot was not deleted";
}

TEST(ColdTierTest, SchemaMismatchIsAMissNotState) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kGRU));
  const std::string cold_dir = MakeTempDir();

  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);
  ASSERT_TRUE(engine.Execute(Update("s", 1, 1)).ok);
  Session* live = const_cast<SessionStore&>(engine.sessions()).Find("s");
  ASSERT_NE(live, nullptr);

  ColdTier writer(cold_dir, model.bi_encoder(), model.config().encoder,
                  model.config().dim, model.config().num_layers);
  ASSERT_TRUE(writer.Save(*live));

  // Same directory read back under a different declared shape.
  ColdTier wrong_kind(cold_dir, model.bi_encoder(), rckt::EncoderKind::kAKT,
                      model.config().dim, model.config().num_layers);
  Session restored;
  restored.id = "s";
  EXPECT_FALSE(wrong_kind.Load(&restored));

  ColdTier wrong_dim(cold_dir, model.bi_encoder(), model.config().encoder,
                     model.config().dim * 2, model.config().num_layers);
  EXPECT_FALSE(wrong_dim.Load(&restored));
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, ColdTierSuite,
                         ::testing::Values(rckt::EncoderKind::kDKT,
                                           rckt::EncoderKind::kGRU,
                                           rckt::EncoderKind::kSAKT,
                                           rckt::EncoderKind::kAKT),
                         [](const auto& info) {
                           return std::string(
                               rckt::EncoderKindName(info.param));
                         });

}  // namespace
}  // namespace serve
}  // namespace kt
