// Tests for kt::continual (continual/reservoir.h, collector.h, trainer.h)
// and the serve-side hot-swap machinery it drives (ShardSet::SwapWeights,
// cold-tier fingerprint guard, stats model identity).
//
// The contracts under test:
//   * the replay reservoir is a pure function of the event multiset —
//     arrival order, partitioning across shards, and merge schedule never
//     change the selected set or its digest;
//   * the collector emits the same samples for any shard layout, and the
//     holdout split is hash-selected (layout-invariant);
//   * a mini-epoch over fixed traffic is deterministic, and a trainer
//     warm-restarted from its checkpoint continues bit-identically to one
//     that never stopped (weights AND optimizer moments);
//   * published weights are torn-write safe: any truncation of current.ktw
//     is rejected by the loader, never half-loaded;
//   * a hot weight swap rebuilds sessions bit-identically to a fresh
//     server that replayed the same history under the new weights;
//   * cold-tier snapshots taken under old weights read as misses after a
//     swap (history adopted, stream rebuilt) — the regression that would
//     silently serve stale-model state;
//   * `stats` reports the live fingerprint/version through swaps, and a
//     drifting stream drives an actual promotion end to end.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "continual/collector.h"
#include "continual/reservoir.h"
#include "continual/trainer.h"
#include "data/simulator.h"
#include "nn/serialize.h"
#include "rckt/rckt_model.h"
#include "serve/coldtier.h"
#include "serve/engine.h"
#include "serve/shard.h"

namespace kt {
namespace continual {
namespace {

uint32_t Bits(float f) {
  uint32_t u = 0;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

std::string MakeTempDir() {
  std::string path = ::testing::TempDir() + "kt_continual_XXXXXX";
  EXPECT_NE(::mkdtemp(path.data()), nullptr);
  return path;
}

data::Dataset TinyDataset(uint64_t seed = 11) {
  data::SimulatorConfig config;
  config.num_students = 16;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 12;
  config.max_responses = 20;
  config.seed = seed;
  data::StudentSimulator sim(config);
  return sim.Generate();
}

rckt::RcktConfig SmallConfig() {
  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.seed = 4;
  return config;
}

// Deterministic synthetic sample: the target plus `context_len` context
// interactions, all derived from (student, index).
TrainSample MakeSample(uint64_t student_fnv, int64_t index,
                       int64_t context_len = 3) {
  TrainSample sample;
  sample.student_fnv = student_fnv;
  sample.index = index;
  sample.target.question = (index * 7 + static_cast<int64_t>(student_fnv % 13));
  sample.target.response = static_cast<int>((student_fnv + index) % 2);
  sample.target.concepts = {index % 4};
  for (int64_t i = 0; i < context_len; ++i) {
    data::Interaction it;
    it.question = (index + i) % 19;
    it.response = static_cast<int>(i % 2);
    it.concepts = {(index + i) % 4};
    sample.context.push_back(std::move(it));
  }
  return sample;
}

// Feeds every interaction of `ds` into `trainer` as committed update
// events, routed to the shard that would own the student under `shards`.
void FeedDataset(ContinualTrainer* trainer, const data::Dataset& ds,
                 int shards) {
  for (const data::ResponseSequence& seq : ds.sequences) {
    const std::string student = "st" + std::to_string(seq.student);
    const int shard = static_cast<int>(serve::ShardSet::ShardFor(
        student, static_cast<uint32_t>(shards)));
    for (size_t i = 0; i < seq.interactions.size(); ++i) {
      const data::Interaction& it = seq.interactions[i];
      serve::UpdateEvent event;
      event.student = student;
      event.index = static_cast<int64_t>(i);
      event.question = it.question;
      event.response = it.response;
      event.concepts = &it.concepts;
      trainer->Record(shard, event);
    }
  }
}

// ---- reservoir ----

TEST(ReservoirTest, SelectionIsArrivalOrderInvariant) {
  std::vector<TrainSample> samples;
  for (int64_t s = 0; s < 20; ++s) {
    for (int64_t i = 0; i < 10; ++i) {
      samples.push_back(MakeSample(HashStudent("u" + std::to_string(s)), i));
    }
  }

  Reservoir forward(32, /*seed=*/7);
  for (const TrainSample& sample : samples) forward.Offer(sample);

  Reservoir backward(32, /*seed=*/7);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    backward.Offer(*it);
  }

  ASSERT_EQ(forward.size(), 32);
  EXPECT_EQ(forward.Digest(), backward.Digest())
      << "bottom-k selection must not depend on arrival order";
}

TEST(ReservoirTest, ShardPartitionAndMergeMatchGlobalFeed) {
  std::vector<TrainSample> samples;
  for (int64_t s = 0; s < 24; ++s) {
    for (int64_t i = 0; i < 8; ++i) {
      samples.push_back(MakeSample(HashStudent("p" + std::to_string(s)), i));
    }
  }

  Reservoir global(40, /*seed=*/3);
  for (const TrainSample& sample : samples) global.Offer(sample);

  // Four per-shard reservoirs fed the hash partition, merged pairwise in
  // an arbitrary schedule.
  std::vector<Reservoir> parts;
  for (int i = 0; i < 4; ++i) parts.emplace_back(40, /*seed=*/3);
  for (const TrainSample& sample : samples) {
    parts[sample.student_fnv % 4].Offer(sample);
  }
  parts[2].MergeFrom(&parts[3]);
  parts[0].MergeFrom(&parts[1]);
  parts[0].MergeFrom(&parts[2]);

  EXPECT_EQ(global.Digest(), parts[0].Digest())
      << "merged shard reservoirs must equal one global reservoir";
  EXPECT_EQ(parts[1].size(), 0) << "MergeFrom must drain the source";
}

TEST(ReservoirTest, SerializeRoundTripsAndRejectsTruncation) {
  Reservoir reservoir(16, /*seed=*/9);
  for (int64_t i = 0; i < 50; ++i) {
    reservoir.Offer(MakeSample(HashStudent("r" + std::to_string(i % 5)), i));
  }
  std::string bytes;
  reservoir.Serialize(&bytes);

  Reservoir restored(16, /*seed=*/9);
  ASSERT_TRUE(restored.Deserialize(bytes.data(), bytes.size()));
  EXPECT_EQ(reservoir.Digest(), restored.Digest());
  EXPECT_EQ(reservoir.size(), restored.size());

  // Every truncation point must be rejected wholesale, never half-parsed.
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{3}}) {
    Reservoir torn(16, /*seed=*/9);
    EXPECT_FALSE(torn.Deserialize(bytes.data(), cut))
        << "truncated at " << cut;
    EXPECT_EQ(torn.size(), 0) << "failed parse must leave it empty";
  }
}

TEST(ReservoirTest, CanonicalOrderIsSortedByPriority) {
  Reservoir reservoir(8, /*seed=*/1);
  for (int64_t i = 0; i < 30; ++i) {
    reservoir.Offer(MakeSample(HashStudent("o"), i));
  }
  uint64_t previous = 0;
  bool first = true;
  for (const TrainSample* sample : reservoir.Ordered()) {
    const uint64_t priority =
        SamplePriority(1, sample->student_fnv, sample->index);
    if (!first) EXPECT_GE(priority, previous);
    previous = priority;
    first = false;
  }
}

// ---- collector ----

// Hash digest of a drained sample list, order-independent (XOR of
// per-sample folds) so layouts that drain in different orders compare.
uint64_t SampleSetDigest(const std::vector<TrainSample>& samples) {
  uint64_t digest = 0;
  for (const TrainSample& sample : samples) {
    Reservoir one(1, 0);
    one.Offer(sample);
    digest ^= one.Digest();
  }
  return digest;
}

TEST(CollectorTest, SampleMultisetIsShardLayoutInvariant) {
  const data::Dataset ds = TinyDataset();

  auto run = [&](int shards) {
    CollectorOptions options;
    options.shards = shards;
    options.window = 8;
    options.min_history = 2;
    options.holdout_every = 4;
    options.seed = 5;
    EventCollector collector(options);
    for (const data::ResponseSequence& seq : ds.sequences) {
      const std::string student = "c" + std::to_string(seq.student);
      const int shard = static_cast<int>(serve::ShardSet::ShardFor(
          student, static_cast<uint32_t>(shards)));
      for (size_t i = 0; i < seq.interactions.size(); ++i) {
        serve::UpdateEvent event;
        event.student = student;
        event.index = static_cast<int64_t>(i);
        event.question = seq.interactions[i].question;
        event.response = seq.interactions[i].response;
        event.concepts = &seq.interactions[i].concepts;
        collector.Record(shard, event);
      }
    }
    std::vector<TrainSample> train, holdout;
    collector.Drain(&train, &holdout);
    EXPECT_GT(train.size(), 0u);
    EXPECT_GT(holdout.size(), 0u) << "holdout split never selected";
    return std::make_pair(SampleSetDigest(train), SampleSetDigest(holdout));
  };

  const auto one = run(1);
  const auto four = run(4);
  EXPECT_EQ(one.first, four.first)
      << "train sample multiset depends on the shard layout";
  EXPECT_EQ(one.second, four.second)
      << "holdout membership depends on the shard layout";
}

TEST(CollectorTest, IndexDiscontinuityResetsTheContext) {
  CollectorOptions options;
  options.window = 8;
  options.min_history = 1;
  options.holdout_every = 0;  // no split: every sample trains
  EventCollector collector(options);

  std::vector<int64_t> concepts = {1};
  auto record = [&](int64_t index) {
    serve::UpdateEvent event;
    event.student = "d";
    event.index = index;
    event.question = index % 10;
    event.response = 1;
    event.concepts = &concepts;
    collector.Record(0, event);
  };
  record(0);
  record(1);  // 1 context interaction -> emits
  record(5);  // discontinuity: context must reset, not fabricate history
  record(6);  // 1 context interaction after the reset -> emits

  std::vector<TrainSample> train, holdout;
  collector.Drain(&train, &holdout);
  ASSERT_EQ(train.size(), 2u);
  EXPECT_EQ(train[0].index, 1);
  EXPECT_EQ(train[0].context.size(), 1u);
  EXPECT_EQ(train[1].index, 6);
  EXPECT_EQ(train[1].context.size(), 1u)
      << "context survived an index discontinuity";
}

// ---- trainer determinism + warm restart ----

TEST(TrainerTest, MiniEpochIsDeterministicAcrossShardLayouts) {
  const data::Dataset ds = TinyDataset();

  auto run = [&](int shards) {
    rckt::RCKT serving(ds.num_questions, ds.num_concepts, SmallConfig());
    TrainerOptions options;
    options.shards = shards;
    options.window = 8;
    options.min_history = 2;
    options.holdout_every = 4;
    options.reservoir_capacity = 64;
    options.tail_capacity = 0;  // tail ring order is drain-order dependent
    options.gate_min_samples = 1 << 30;  // gate off: pure training epoch
    options.seed = 5;
    ContinualTrainer trainer(serving, options);
    FeedDataset(&trainer, ds, shards);
    EXPECT_TRUE(trainer.RunMiniEpoch());
    return nn::FingerprintModule(trainer.candidate());
  };

  EXPECT_EQ(run(1), run(4))
      << "fine-tuned weights depend on the shard layout";
}

TEST(TrainerTest, CheckpointWarmRestartContinuesBitIdentically) {
  const data::Dataset phase1 = TinyDataset(21);
  const data::Dataset phase2 = TinyDataset(22);
  const std::string dir_a = MakeTempDir();

  TrainerOptions options;
  options.dir = dir_a;
  options.window = 8;
  options.min_history = 2;
  options.holdout_every = 4;
  options.reservoir_capacity = 64;
  options.tail_capacity = 0;
  options.gate_min_samples = 1 << 30;
  options.seed = 5;

  // Trainer A: phase 1, mini-epoch (checkpoints), then phase 2.
  rckt::RCKT serving_a(phase1.num_questions, phase1.num_concepts,
                       SmallConfig());
  ContinualTrainer a(serving_a, options);
  FeedDataset(&a, phase1, 1);
  ASSERT_TRUE(a.RunMiniEpoch());
  const uint64_t mid_fingerprint = nn::FingerprintModule(a.candidate());
  const ContinualTrainer::Stats mid = a.GetStats();

  // Trainer B: fresh process resuming A's checkpoint ("kill -9 between
  // mini-epochs"), then the same phase 2.
  rckt::RCKT serving_b(phase1.num_questions, phase1.num_concepts,
                       SmallConfig());
  ContinualTrainer b(serving_b, options);
  ASSERT_TRUE(b.LoadCheckpoint());
  EXPECT_EQ(nn::FingerprintModule(b.candidate()), mid_fingerprint)
      << "restored candidate weights differ from the checkpointed ones";
  ContinualTrainer::Stats resumed = b.GetStats();
  EXPECT_EQ(resumed.events, mid.events);
  EXPECT_EQ(resumed.mini_epochs, mid.mini_epochs);
  EXPECT_EQ(resumed.reservoir_fnv64, mid.reservoir_fnv64)
      << "restored reservoir diverged from the checkpointed one";

  FeedDataset(&a, phase2, 1);
  FeedDataset(&b, phase2, 1);
  EXPECT_EQ(a.GetStats().reservoir_fnv64, b.GetStats().reservoir_fnv64)
      << "reservoirs diverged after identical phase-2 traffic";
  EXPECT_EQ(nn::FingerprintModule(a.candidate()),
            nn::FingerprintModule(b.candidate()))
      << "weights diverged before the second mini-epoch even ran";
  {
    // The optimizer moments must round-trip bit-for-bit too — with equal
    // weights but diverged Adam state the second epoch would step apart.
    nn::Adam* oa = a.candidate().optimizer();
    nn::Adam* ob = b.candidate().optimizer();
    EXPECT_EQ(oa->step_count(), ob->step_count());
    auto digest = [](const std::vector<Tensor>& ts) {
      uint64_t h = 1469598103934665603ull;
      for (const Tensor& t : ts) {
        for (int64_t i = 0; i < t.numel(); ++i) {
          uint32_t bits;
          const float f = t.flat(i);
          std::memcpy(&bits, &f, 4);
          h = (h ^ bits) * 1099511628211ull;
        }
      }
      return h;
    };
    EXPECT_EQ(digest(oa->moment1()), digest(ob->moment1()))
        << "restored first moments differ";
    EXPECT_EQ(digest(oa->moment2()), digest(ob->moment2()))
        << "restored second moments differ";
  }
  ASSERT_TRUE(a.RunMiniEpoch());
  ASSERT_TRUE(b.RunMiniEpoch());
  // Equality here requires the optimizer moments round-tripped too: after
  // a restore with zeroed Adam state the same batch would step elsewhere.
  EXPECT_EQ(nn::FingerprintModule(a.candidate()),
            nn::FingerprintModule(b.candidate()))
      << "warm-restarted trainer diverged from the uninterrupted one";
}

// ---- publish-path crash safety ----

TEST(TrainerTest, TruncatedPublishedWeightsAreRejectedWholesale) {
  const data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig());
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/current.ktw";

  nn::ModelMeta meta;
  meta.encoder_kind = static_cast<int32_t>(rckt::EncoderKind::kDKT);
  meta.dim = 16;
  meta.num_layers = 2;
  meta.num_heads = 2;
  meta.num_questions = ds.num_questions;
  meta.num_concepts = ds.num_concepts;
  meta.weights_fnv64 = nn::FingerprintModule(model);
  meta.weight_version = 3;
  ASSERT_TRUE(nn::SaveModuleWithMeta(model, meta, path).ok());

  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char chunk[1 << 12];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      bytes.append(chunk, n);
    }
    std::fclose(f);
  }
  ASSERT_GT(bytes.size(), 16u);

  // A torn write truncates at an arbitrary byte; every prefix must fail
  // to load, leaving the target model untouched.
  const uint64_t before = nn::FingerprintModule(model);
  for (size_t cut = 1; cut < bytes.size(); cut += bytes.size() / 9 + 1) {
    const std::string torn_path = dir + "/torn.ktw";
    std::FILE* f = std::fopen(torn_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, f), cut);
    std::fclose(f);
    rckt::RCKT victim(ds.num_questions, ds.num_concepts, SmallConfig());
    EXPECT_FALSE(nn::LoadModule(victim, torn_path).ok())
        << "truncation at byte " << cut << " loaded anyway";
  }
  EXPECT_EQ(nn::FingerprintModule(model), before);

  // The intact file still carries its full meta (fingerprint + version).
  bool present = false;
  nn::ModelMeta read_back;
  ASSERT_TRUE(nn::ReadModuleMeta(path, &present, &read_back).ok());
  ASSERT_TRUE(present);
  EXPECT_EQ(read_back.weights_fnv64, meta.weights_fnv64);
  EXPECT_EQ(read_back.weight_version, 3);
}

// ---- hot swap on the shard set ----

serve::ServeRequest Predict(const std::string& student, int64_t question) {
  serve::ServeRequest r;
  r.op = serve::Op::kPredict;
  r.student = student;
  r.question = question;
  r.has_concepts = true;
  r.concepts = {question % 4};
  return r;
}

serve::ServeRequest Update(const std::string& student, int64_t question,
                           int response) {
  serve::ServeRequest r = Predict(student, question);
  r.op = serve::Op::kUpdate;
  r.response = response;
  return r;
}

TEST(SwapWeightsTest, RebuiltStreamsMatchFreshReplayUnderNewWeights) {
  const data::Dataset ds = TinyDataset();
  rckt::RcktConfig config_b = SmallConfig();
  config_b.seed = 99;  // genuinely different weights
  rckt::RCKT model_b(ds.num_questions, ds.num_concepts, config_b);
  const std::vector<Tensor> state_b = model_b.StateClone();
  const uint64_t fingerprint_b = nn::FingerprintModule(model_b);

  auto feed = [&](serve::ShardSet& shards) {
    for (int step = 0; step < 8; ++step) {
      for (const char* student : {"sa", "sb", "sc"}) {
        ASSERT_TRUE(
            shards.SubmitSync(Update(student, (step * 5) % 25, step % 2)).ok);
      }
    }
  };

  // Swapped server: history accumulated under A, then hot-swapped to B.
  rckt::RCKT model_a(ds.num_questions, ds.num_concepts, SmallConfig());
  serve::ShardSetOptions options;
  options.shards = 2;
  options.engine.num_questions = ds.num_questions;
  options.engine.num_concepts = ds.num_concepts;
  serve::ShardSet swapped(model_a, options, nullptr);
  feed(swapped);
  ASSERT_TRUE(swapped.SwapWeights(state_b, fingerprint_b, 1));
  const serve::ServeResponse after = swapped.SubmitSync(Predict("sb", 7));
  ASSERT_TRUE(after.ok) << after.error;

  // Reference: a server that ran under B's weights from the start.
  rckt::RCKT model_fresh(ds.num_questions, ds.num_concepts, config_b);
  serve::ShardSet fresh(model_fresh, options, nullptr);
  feed(fresh);
  const serve::ServeResponse want = fresh.SubmitSync(Predict("sb", 7));
  ASSERT_TRUE(want.ok) << want.error;

  EXPECT_EQ(Bits(want.p), Bits(after.p))
      << "post-swap rebuild is not bit-identical to a fresh replay";
  EXPECT_EQ(after.history, want.history) << "swap dropped history";

  // stats reflects the new identity on every shard.
  serve::ServeRequest stats;
  stats.op = serve::Op::kStats;
  const serve::ServeResponse summed = swapped.SubmitSync(stats);
  ASSERT_TRUE(summed.ok);
  EXPECT_EQ(summed.model_fingerprint, fingerprint_b);
  EXPECT_EQ(summed.weight_version, 1);
  swapped.Stop();
  fresh.Stop();
}

TEST(SwapWeightsTest, StatsReportStartupIdentityBeforeAnySwap) {
  const data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig());
  serve::ShardSetOptions options;
  options.shards = 2;
  options.initial_weight_version = 7;
  options.engine.num_questions = ds.num_questions;
  options.engine.num_concepts = ds.num_concepts;
  options.engine.model_fingerprint = nn::FingerprintModule(model);
  serve::ShardSet shards(model, options, nullptr);
  serve::ServeRequest stats;
  stats.op = serve::Op::kStats;
  const serve::ServeResponse got = shards.SubmitSync(stats);
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.model_fingerprint, options.engine.model_fingerprint);
  EXPECT_EQ(got.weight_version, 7);
}

// ---- cold tier fingerprint guard ----

// A snapshot written under one model's weights must NOT resume as a
// stream under another model: the stream bytes are a function of the
// weights. Old code ignored the fingerprint and served the stale state.
TEST(ColdTierFingerprintTest, StaleModelSnapshotIsAMissWithHistoryAdopted) {
  const data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig());
  const std::string cold_dir = MakeTempDir();

  serve::EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  serve::InferenceEngine engine(model, options);
  ASSERT_TRUE(engine.Execute(Update("s", 1, 1)).ok);
  ASSERT_TRUE(engine.Execute(Update("s", 4, 0)).ok);
  serve::Session* live =
      const_cast<serve::SessionStore&>(engine.sessions()).Find("s");
  ASSERT_NE(live, nullptr);

  serve::ColdTier old_model_tier(cold_dir, model.bi_encoder(),
                                 model.config().encoder, model.config().dim,
                                 model.config().num_layers,
                                 /*model_fingerprint=*/0x1111);
  ASSERT_TRUE(old_model_tier.Save(*live));

  // Same directory, new weights fingerprint (post-swap server).
  serve::ColdTier new_model_tier(cold_dir, model.bi_encoder(),
                                 model.config().encoder, model.config().dim,
                                 model.config().num_layers,
                                 /*model_fingerprint=*/0x2222);
  serve::Session restored;
  restored.id = "s";
  EXPECT_FALSE(new_model_tier.Load(&restored))
      << "stale-model snapshot resumed as a live stream";
  EXPECT_EQ(restored.stream, nullptr);
  // History is model-independent ground truth: the warm-restart path
  // still adopts it so the replay rebuild has something to replay.
  ASSERT_EQ(restored.history.size(), live->history.size());
  EXPECT_EQ(restored.history[0].question, 1);
  EXPECT_EQ(restored.history[1].question, 4);

  // The stale snapshot was deleted; a second load is a clean miss.
  serve::Session again;
  again.id = "s";
  EXPECT_FALSE(new_model_tier.Load(&again));
  EXPECT_TRUE(again.history.empty()) << "deleted snapshot resurfaced";

  // Matching fingerprint still round-trips (the guard is not a tombstone).
  ASSERT_TRUE(old_model_tier.Save(*live));
  serve::Session same;
  same.id = "s";
  EXPECT_TRUE(old_model_tier.Load(&same));
  EXPECT_NE(same.stream, nullptr);
}

// ---- end-to-end drift -> promotion ----

TEST(TrainerTest, DriftingStreamDrivesAPromotionThroughTheShardSet) {
  const data::Dataset ds = TinyDataset(31);
  rckt::RCKT serving(ds.num_questions, ds.num_concepts, SmallConfig());
  const uint64_t offline_fingerprint = nn::FingerprintModule(serving);

  serve::ShardSetOptions shard_options;
  shard_options.shards = 2;
  shard_options.engine.num_questions = ds.num_questions;
  shard_options.engine.num_concepts = ds.num_concepts;
  shard_options.engine.model_fingerprint = offline_fingerprint;
  serve::ShardSet shards(serving, shard_options, nullptr);

  TrainerOptions options;
  options.dir = MakeTempDir();
  options.shards = 2;
  options.window = 8;
  options.min_history = 2;
  options.holdout_every = 4;
  options.reservoir_capacity = 128;
  options.tail_capacity = 32;
  options.gate_min_samples = 8;
  options.gate_eps = 0.05;
  options.lr = 1e-3f;
  options.seed = 5;
  ContinualTrainer trainer(serving, options);
  // No Start(): the loop is driven synchronously here, so a promotion
  // installs the candidate into `serving` directly; the explicit
  // SwapWeights below then exercises the live-shard propagation.
  FeedDataset(&trainer, ds, 2);

  // Promotion gate: the candidate trained on live traffic only has to
  // not lose to the frozen incumbent by more than gate_eps, which holds
  // with margin for an untrained incumbent. Run epochs until one lands.
  bool promoted = false;
  for (int epoch = 0; epoch < 3 && !promoted; ++epoch) {
    ASSERT_TRUE(trainer.RunMiniEpoch());
    promoted = trainer.GetStats().promotions > 0;
  }
  ASSERT_TRUE(promoted) << "no promotion after 3 mini-epochs";

  const ContinualTrainer::Stats stats = trainer.GetStats();
  EXPECT_GE(stats.weight_version, 1);
  EXPECT_GT(stats.events, 0);
  EXPECT_GT(stats.reservoir_size, 0);

  // Without a shard set the promotion updated the serving model in place.
  EXPECT_EQ(nn::FingerprintModule(serving),
            nn::FingerprintModule(trainer.candidate()))
      << "promotion did not install the candidate weights";

  // The published artifact carries the promoted identity.
  bool present = false;
  nn::ModelMeta meta;
  ASSERT_TRUE(nn::ReadModuleMeta(options.dir + "/current.ktw", &present,
                                 &meta)
                  .ok());
  ASSERT_TRUE(present);
  EXPECT_EQ(meta.weights_fnv64, nn::FingerprintModule(serving));
  EXPECT_EQ(meta.weight_version, stats.weight_version);

  // And a swap through the live shard set propagates the identity to
  // stats (what check_continual.sh reads via the loadgen windows).
  ASSERT_TRUE(shards.SwapWeights(trainer.candidate().StateClone(),
                                 meta.weights_fnv64, meta.weight_version));
  serve::ServeRequest stats_op;
  stats_op.op = serve::Op::kStats;
  const serve::ServeResponse reply = shards.SubmitSync(stats_op);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.model_fingerprint, meta.weights_fnv64);
  EXPECT_EQ(reply.weight_version, meta.weight_version);
  shards.Stop();
}

}  // namespace
}  // namespace continual
}  // namespace kt
