// Unit tests for the extracted load-generator core (serve/loadgen.h): the
// --expect parser, the bit-exact mismatch checker, the summary JSON
// builders, the rolling-AUC ring, and the line client's disconnect paths.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/json.h"
#include "serve/loadgen.h"

namespace kt {
namespace serve {
namespace {

TEST(ParseExpectedPredictionsTest, ReadsScoresAndSamplingParams) {
  const std::string text =
      "{\"stride\":3,\"min_target\":2,\"predictions\":["
      "{\"sequence\":0,\"target\":4,\"generator_score\":0.625},"
      "{\"sequence\":1,\"target\":7,\"generator_score\":0.25}]}";
  const auto parsed = ParseExpectedPredictions(text, 4, 4);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().stride, 3);
  EXPECT_EQ(parsed.value().min_target, 2);
  ASSERT_EQ(parsed.value().scores.size(), 2u);
  EXPECT_FLOAT_EQ(parsed.value().scores.at({0, 4}), 0.625f);
  EXPECT_FLOAT_EQ(parsed.value().scores.at({1, 7}), 0.25f);
}

TEST(ParseExpectedPredictionsTest, DefaultsSamplingParamsForLegacyFiles) {
  const auto parsed = ParseExpectedPredictions("{\"predictions\":[]}", 4, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().stride, 4);
  EXPECT_EQ(parsed.value().min_target, 2);
  EXPECT_TRUE(parsed.value().scores.empty());
}

TEST(ParseExpectedPredictionsTest, FailsOnMalformedJson) {
  const auto parsed = ParseExpectedPredictions("{\"predictions\":[", 4, 4);
  ASSERT_FALSE(parsed.ok());
}

TEST(ParseExpectedPredictionsTest, FailsWithoutPredictionsArray) {
  const auto parsed = ParseExpectedPredictions("{\"stride\":4}", 4, 4);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("predictions"),
            std::string::npos);
}

TEST(CheckPredictionsTest, PassesOnBitIdenticalScores) {
  PredictionMap expected{{{0, 4}, 0.5f}, {{1, 8}, 0.75f}};
  const MismatchReport report = CheckPredictions(expected, expected);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, 2);
  EXPECT_EQ(report.mismatches, 0);
  EXPECT_EQ(report.missing, 0);
}

TEST(CheckPredictionsTest, DetectsSingleBitDifference) {
  PredictionMap expected{{{0, 4}, 0.5f}};
  float nudged = 0.5f;
  uint32_t bits = FloatBits(nudged);
  bits ^= 1;  // flip the lowest mantissa bit
  std::memcpy(&nudged, &bits, sizeof(nudged));
  PredictionMap got{{{0, 4}, nudged}};
  const MismatchReport report = CheckPredictions(expected, got);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.mismatches, 1);
  ASSERT_EQ(report.details.size(), 1u);
  EXPECT_NE(report.details[0].find("MISMATCH"), std::string::npos);
}

TEST(CheckPredictionsTest, CountsMissingAndCapsDetails) {
  PredictionMap expected, got;
  for (int64_t t = 0; t < 10; ++t) {
    expected[{0, t}] = 0.5f;
    if (t < 8) got[{0, t}] = 0.25f;  // 8 mismatches, 2 missing
  }
  const MismatchReport report = CheckPredictions(expected, got,
                                                 /*max_details=*/3);
  EXPECT_EQ(report.mismatches, 8);
  EXPECT_EQ(report.missing, 2);
  EXPECT_EQ(report.details.size(), 3u);
}

TEST(CheckPredictionsTest, EmptyDatasetPasses) {
  // A dataset yielding zero windows produces zero expectations and zero
  // predictions — a valid, passing replay.
  const MismatchReport report = CheckPredictions({}, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, 0);
}

TEST(SummarizeLatenciesTest, EmptyYieldsZeros) {
  std::vector<double> empty;
  const LatencyStats stats = SummarizeLatencies(empty);
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.p50_us, 0.0);
  EXPECT_EQ(stats.p99_us, 0.0);
  EXPECT_EQ(stats.mean_us, 0.0);
}

TEST(SummarizeLatenciesTest, PercentilesOrdered) {
  std::vector<double> us;
  for (int i = 100; i >= 1; --i) us.push_back(static_cast<double>(i));
  const LatencyStats stats = SummarizeLatencies(us);
  EXPECT_EQ(stats.count, 100);
  EXPECT_NEAR(stats.mean_us, 50.5, 1e-9);
  EXPECT_LE(stats.p50_us, stats.p99_us);
  EXPECT_NEAR(stats.p50_us, 50.0, 1.0);
  EXPECT_NEAR(stats.p99_us, 99.0, 1.0);
}

// Each builder's output must parse back as JSON and carry its key fields —
// the contract scripts/check_*.sh and obs_check rely on.
TEST(SummaryJsonTest, ReplaySummaryRoundTrips) {
  ReplaySummary s;
  s.connections = 4;
  s.predictions = 7;
  s.check.compared = 7;
  s.check.mismatches = 1;
  s.check.missing = 2;
  s.elapsed_s = 0.5;
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(ReplaySummaryJson(s), &doc, &error)) << error;
  EXPECT_EQ(doc.GetString("mode", ""), "replay");
  EXPECT_EQ(doc.GetInt("predictions", -1), 7);
  EXPECT_EQ(doc.GetInt("mismatches", -1), 1);
  EXPECT_EQ(doc.GetInt("missing", -1), 2);
}

TEST(SummaryJsonTest, ScenarioSummaryRoundTrips) {
  ScenarioSummary s;
  s.scenario = "cold_start";
  s.connections = 2;
  s.seed = 6010;
  s.students = 40;
  s.interactions = 100;
  s.predictions = 100;
  s.auc = 0.625;
  s.auc_samples = 100;
  s.auc_window = 50000;
  s.traffic_fnv64 = 0xdeadbeefcafef00dull;
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(ScenarioSummaryJson(s), &doc, &error)) << error;
  EXPECT_EQ(doc.GetString("mode", ""), "scenario");
  EXPECT_EQ(doc.GetString("scenario", ""), "cold_start");
  EXPECT_EQ(doc.GetInt("students", -1), 40);
  EXPECT_EQ(doc.GetNumber("auc", -1.0), 0.625);
  EXPECT_EQ(doc.GetString("traffic_fnv64", ""), "deadbeefcafef00d");
}

TEST(RollingAucTest, SeparableScoresGivePerfectAuc) {
  RollingAuc auc(100);
  for (int i = 0; i < 50; ++i) {
    auc.Add(0.9f, 1);
    auc.Add(0.1f, 0);
  }
  EXPECT_EQ(auc.count(), 100);
  EXPECT_DOUBLE_EQ(auc.Auc(), 1.0);
}

TEST(RollingAucTest, EmptyAndOneClassFallBackToHalf) {
  RollingAuc auc(10);
  EXPECT_DOUBLE_EQ(auc.Auc(), 0.5);
  auc.Add(0.7f, 1);
  EXPECT_DOUBLE_EQ(auc.Auc(), 0.5);
}

TEST(RollingAucTest, WindowEvictsOldestPairs) {
  RollingAuc auc(10);
  // 10 anti-correlated pairs first; then 10 perfectly-correlated pairs
  // that must fully displace them.
  for (int i = 0; i < 5; ++i) {
    auc.Add(0.9f, 0);
    auc.Add(0.1f, 1);
  }
  EXPECT_DOUBLE_EQ(auc.Auc(), 0.0);
  for (int i = 0; i < 5; ++i) {
    auc.Add(0.9f, 1);
    auc.Add(0.1f, 0);
  }
  EXPECT_EQ(auc.count(), 10);
  EXPECT_DOUBLE_EQ(auc.Auc(), 1.0);
}

TEST(RollingAucTest, MergeIsOrderInvariant) {
  RollingAuc a(100), b(100), ab(100), ba(100);
  for (int i = 0; i < 20; ++i) {
    const float score = 0.05f * static_cast<float>(i % 10) + 0.1f;
    const int label = i % 3 == 0 ? 1 : 0;
    (i % 2 == 0 ? a : b).Add(score, label);
  }
  ab.Merge(a);
  ab.Merge(b);
  ba.Merge(b);
  ba.Merge(a);
  EXPECT_DOUBLE_EQ(ab.Auc(), ba.Auc());
  EXPECT_EQ(ab.count(), ba.count());
}

TEST(FnvDigestTest, OrderIndependentAcrossStudentsSensitiveWithin) {
  const std::vector<int64_t> c1{2}, c2{3, 4};
  uint64_t s1 = FnvMixInteraction(kFnvOffset, 7, c1, 1);
  s1 = FnvMixInteraction(s1, 9, c2, 0);
  uint64_t s2 = FnvMixInteraction(kFnvOffset, 11, c1, 0);
  // XOR combination: student order must not matter.
  EXPECT_EQ(s1 ^ s2, s2 ^ s1);
  // Within a student, order matters (left-fold).
  uint64_t s1_swapped = FnvMixInteraction(kFnvOffset, 9, c2, 0);
  s1_swapped = FnvMixInteraction(s1_swapped, 7, c1, 1);
  EXPECT_NE(s1, s1_swapped);
  // And every field is load-bearing.
  EXPECT_NE(FnvMixInteraction(kFnvOffset, 7, c1, 1),
            FnvMixInteraction(kFnvOffset, 7, c1, 0));
  EXPECT_NE(FnvMixInteraction(kFnvOffset, 7, c1, 1),
            FnvMixInteraction(kFnvOffset, 8, c1, 1));
  EXPECT_NE(FnvMixInteraction(kFnvOffset, 7, c1, 1),
            FnvMixInteraction(kFnvOffset, 7, c2, 1));
}

TEST(LineClientTest, ConnectFailsOnClosedPort) {
  LineClient client;
  std::string error;
  // Port 1 on loopback: privileged and unbound — connect must fail with a
  // diagnostic, not hang or crash.
  EXPECT_FALSE(client.Connect(1, &error));
  EXPECT_NE(error.find("connect()"), std::string::npos);
}

TEST(LineClientTest, ReportsServerDisconnectMidStream) {
  // A one-shot server that accepts, reads a little, and slams the
  // connection shut without replying.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const int port = ntohs(addr.sin_port);

  std::thread server([listener] {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn >= 0) {
      char buffer[256];
      (void)::recv(conn, buffer, sizeof(buffer), 0);
      ::close(conn);  // disconnect without ever answering
    }
  });

  LineClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(port, &error)) << error;
  std::string response;
  EXPECT_FALSE(client.RoundTrip("{\"op\":\"stats\"}", &response, &error));
  EXPECT_EQ(error, "server closed the connection");

  server.join();
  ::close(listener);
}

}  // namespace
}  // namespace serve
}  // namespace kt
