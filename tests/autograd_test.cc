#include "autograd/ops.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>

#include "autograd/grad_check.h"
#include "tensor/tensor_ops.h"

namespace kt {
namespace ag {
namespace {

Variable Param(Tensor t) { return Variable::Leaf(std::move(t), true); }

// Convenience: run CheckGradients on a 1-param function.
void ExpectGradOk(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> params) {
  GradCheckResult result = CheckGradients(fn, params);
  EXPECT_TRUE(result.ok) << "max abs err " << result.max_abs_error
                         << " max rel err " << result.max_rel_error;
}

TEST(VariableTest, LeafHoldsValueAndGrad) {
  Variable v = Param(Tensor({2}, {1, 2}));
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FLOAT_EQ(v.grad().flat(0), 0.0f);  // zeros before backward
}

TEST(VariableTest, BackwardRequiresScalar) {
  Variable v = Param(Tensor({2}, {1, 2}));
  EXPECT_DEATH(v.Backward(), "scalar");
}

TEST(VariableTest, SimpleChainRule) {
  // loss = sum(3 * x) -> dx = 3 everywhere.
  Variable x = Param(Tensor({4}, {1, 2, 3, 4}));
  Variable loss = SumAll(MulScalar(x, 3.0f));
  loss.Backward();
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad().flat(i), 3.0f);
}

TEST(VariableTest, GradAccumulatesAcrossUses) {
  // loss = sum(x + x): dx = 2.
  Variable x = Param(Tensor({3}, {1, 1, 1}));
  Variable loss = SumAll(Add(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 2.0f);
}

TEST(VariableTest, ZeroGradResets) {
  Variable x = Param(Tensor({2}, {1, 2}));
  SumAll(x).Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 1.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 0.0f);
}

TEST(VariableTest, NoGradGuardSkipsTape) {
  Variable x = Param(Tensor({2}, {1, 2}));
  NoGradGuard guard;
  Variable y = MulScalar(x, 2.0f);
  EXPECT_FALSE(y.requires_grad());
}

TEST(VariableTest, ConstantDoesNotRequireGrad) {
  Variable c = Constant(Tensor({2}, {1, 2}));
  EXPECT_FALSE(c.requires_grad());
  Variable y = MulScalar(c, 2.0f);
  EXPECT_FALSE(y.requires_grad());
}

TEST(VariableTest, DiamondGraphAccumulates) {
  // y = x*x; z = y + y; loss = sum(z). dz/dx = 4x.
  Variable x = Param(Tensor({2}, {3, -2}));
  Variable y = Mul(x, x);
  Variable loss = SumAll(Add(y, y));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 12.0f);
  EXPECT_FLOAT_EQ(x.grad().flat(1), -8.0f);
}

// ---- Gradient checks per op ----

TEST(GradCheckTest, AddSubMulDiv) {
  Rng rng(1);
  auto make = [&]() {
    return std::vector<Variable>{
        Param(Tensor::Uniform({2, 3}, 0.5f, 2.0f, rng)),
        Param(Tensor::Uniform({2, 3}, 0.5f, 2.0f, rng))};
  };
  ExpectGradOk([](const auto& p) { return SumAll(Add(p[0], p[1])); }, make());
  ExpectGradOk([](const auto& p) { return SumAll(Sub(p[0], p[1])); }, make());
  ExpectGradOk([](const auto& p) { return SumAll(Mul(p[0], p[1])); }, make());
  ExpectGradOk([](const auto& p) { return SumAll(Div(p[0], p[1])); }, make());
}

TEST(GradCheckTest, BroadcastBinary) {
  Rng rng(2);
  std::vector<Variable> params{
      Param(Tensor::Uniform({2, 3}, 0.5f, 2.0f, rng)),
      Param(Tensor::Uniform({3}, 0.5f, 2.0f, rng))};
  ExpectGradOk([](const auto& p) { return SumAll(Mul(p[0], p[1])); }, params);
  std::vector<Variable> params2{
      Param(Tensor::Uniform({2, 1}, 0.5f, 2.0f, rng)),
      Param(Tensor::Uniform({1, 4}, 0.5f, 2.0f, rng))};
  ExpectGradOk([](const auto& p) { return SumAll(Add(p[0], p[1])); }, params2);
}

TEST(GradCheckTest, Activations) {
  Rng rng(3);
  auto one = [&](float lo, float hi) {
    return std::vector<Variable>{Param(Tensor::Uniform({3, 2}, lo, hi, rng))};
  };
  ExpectGradOk([](const auto& p) { return SumAll(Sigmoid(p[0])); },
               one(-2, 2));
  ExpectGradOk([](const auto& p) { return SumAll(Tanh(p[0])); }, one(-2, 2));
  ExpectGradOk([](const auto& p) { return SumAll(Exp(p[0])); }, one(-1, 1));
  ExpectGradOk([](const auto& p) { return SumAll(Log(p[0])); },
               one(0.5f, 3.0f));
  ExpectGradOk([](const auto& p) { return SumAll(Sqrt(p[0])); },
               one(0.5f, 3.0f));
  // Relu away from the kink.
  ExpectGradOk([](const auto& p) { return SumAll(Relu(p[0])); },
               one(0.5f, 2.0f));
}

TEST(GradCheckTest, MatMulAndBatched) {
  Rng rng(4);
  std::vector<Variable> params{
      Param(Tensor::Uniform({3, 4}, -1, 1, rng)),
      Param(Tensor::Uniform({4, 2}, -1, 1, rng))};
  ExpectGradOk([](const auto& p) { return SumAll(MatMul(p[0], p[1])); },
               params);

  std::vector<Variable> batched{
      Param(Tensor::Uniform({2, 3, 4}, -1, 1, rng)),
      Param(Tensor::Uniform({2, 4, 2}, -1, 1, rng))};
  ExpectGradOk(
      [](const auto& p) { return SumAll(BatchMatMul(p[0], p[1])); }, batched);
}

TEST(GradCheckTest, SoftmaxComposition) {
  Rng rng(5);
  std::vector<Variable> params{Param(Tensor::Uniform({2, 5}, -2, 2, rng))};
  // Weighted sum so the softmax gradient isn't identically zero.
  Tensor weights = Tensor::Uniform({2, 5}, -1, 1, rng);
  ExpectGradOk(
      [weights](const auto& p) {
        return SumAll(Mul(SoftmaxLastDim(p[0]), Constant(weights)));
      },
      params);
}

TEST(GradCheckTest, ShapeOps) {
  Rng rng(6);
  std::vector<Variable> params{Param(Tensor::Uniform({2, 6}, -1, 1, rng))};
  Tensor w1 = Tensor::Uniform({3, 4}, -1, 1, rng);
  ExpectGradOk(
      [w1](const auto& p) {
        return SumAll(Mul(Reshape(p[0], {3, 4}), Constant(w1)));
      },
      params);
  Tensor w2 = Tensor::Uniform({6, 2}, -1, 1, rng);
  ExpectGradOk(
      [w2](const auto& p) {
        return SumAll(Mul(TransposeLast2(p[0]), Constant(w2)));
      },
      params);
  Tensor w3 = Tensor::Uniform({2, 3}, -1, 1, rng);
  ExpectGradOk(
      [w3](const auto& p) {
        return SumAll(Mul(Slice(p[0], 1, 2, 5), Constant(w3)));
      },
      params);
}

TEST(GradCheckTest, ConcatRoutesGradients) {
  Rng rng(7);
  std::vector<Variable> params{
      Param(Tensor::Uniform({2, 2}, -1, 1, rng)),
      Param(Tensor::Uniform({2, 3}, -1, 1, rng))};
  Tensor w = Tensor::Uniform({2, 5}, -1, 1, rng);
  ExpectGradOk(
      [w](const auto& p) {
        return SumAll(Mul(Concat({p[0], p[1]}, 1), Constant(w)));
      },
      params);
}

TEST(GradCheckTest, Reductions) {
  Rng rng(8);
  std::vector<Variable> params{Param(Tensor::Uniform({3, 4}, -1, 1, rng))};
  ExpectGradOk([](const auto& p) { return MeanAll(p[0]); }, params);
  Tensor w = Tensor::Uniform({4}, -1, 1, rng);
  ExpectGradOk(
      [w](const auto& p) { return SumAll(Mul(Sum(p[0], 0), Constant(w))); },
      params);
  Tensor w2 = Tensor::Uniform({3, 1}, -1, 1, rng);
  ExpectGradOk(
      [w2](const auto& p) {
        return SumAll(Mul(Mean(p[0], 1, true), Constant(w2)));
      },
      params);
}

TEST(GradCheckTest, MaximumRoutesToWinner) {
  // Values chosen away from ties so the subgradient is unambiguous.
  std::vector<Variable> params{Param(Tensor({3}, {1.0f, 5.0f, -2.0f})),
                               Param(Tensor({3}, {2.0f, 1.0f, 3.0f}))};
  ExpectGradOk(
      [](const auto& p) { return SumAll(Maximum(p[0], p[1])); }, params);

  Variable a = Param(Tensor({3}, {1.0f, 5.0f, -2.0f}));
  Variable b = Param(Tensor({3}, {2.0f, 1.0f, 3.0f}));
  SumAll(Maximum(a, b)).Backward();
  EXPECT_FLOAT_EQ(a.grad().flat(0), 0.0f);
  EXPECT_FLOAT_EQ(a.grad().flat(1), 1.0f);
  EXPECT_FLOAT_EQ(b.grad().flat(2), 1.0f);
}

TEST(GradCheckTest, EmbeddingScattersIntoRows) {
  Rng rng(9);
  Variable table = Param(Tensor::Uniform({5, 3}, -1, 1, rng));
  std::vector<int64_t> indices = {1, 3, 1};
  Variable out = EmbeddingLookup(table, indices);
  EXPECT_EQ(out.shape(), (Shape{3, 3}));
  SumAll(out).Backward();
  // Row 1 was looked up twice, row 3 once, others never.
  EXPECT_FLOAT_EQ(table.grad().at({1, 0}), 2.0f);
  EXPECT_FLOAT_EQ(table.grad().at({3, 0}), 1.0f);
  EXPECT_FLOAT_EQ(table.grad().at({0, 0}), 0.0f);
}

TEST(GradCheckTest, EmbeddingBagMean) {
  Rng rng(10);
  Variable table = Param(Tensor::Uniform({4, 2}, -1, 1, rng));
  std::vector<std::vector<int64_t>> bags = {{0, 1}, {2}, {}};
  Variable out = EmbeddingBagMean(table, bags);
  EXPECT_EQ(out.shape(), (Shape{3, 2}));
  // Bag 0 is the mean of rows 0 and 1.
  EXPECT_NEAR(out.value().at({0, 0}),
              0.5f * (table.value().at({0, 0}) + table.value().at({1, 0})),
              1e-6f);
  // Empty bag yields zeros.
  EXPECT_FLOAT_EQ(out.value().at({2, 0}), 0.0f);
  SumAll(out).Backward();
  EXPECT_FLOAT_EQ(table.grad().at({0, 0}), 0.5f);
  EXPECT_FLOAT_EQ(table.grad().at({2, 0}), 1.0f);
  EXPECT_FLOAT_EQ(table.grad().at({3, 0}), 0.0f);
}

TEST(DropoutTest, IdentityWhenNotTraining) {
  Rng rng(11);
  Variable x = Param(Tensor::Uniform({4, 4}, -1, 1, rng));
  Variable y = Dropout(x, 0.5f, rng, /*train=*/false);
  EXPECT_TRUE(y.value().AllClose(x.value()));
}

TEST(DropoutTest, ScalesKeptUnits) {
  Rng rng(12);
  Variable x = Param(Tensor::Ones({1000}));
  Variable y = Dropout(x, 0.5f, rng, /*train=*/true);
  // Each kept unit is 2.0; expectation preserved.
  int64_t kept = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    const float v = y.value().flat(i);
    EXPECT_TRUE(v == 0.0f || v == 2.0f);
    if (v != 0.0f) ++kept;
  }
  EXPECT_NEAR(static_cast<double>(kept) / 1000.0, 0.5, 0.08);
  // Gradient uses the same mask.
  SumAll(y).Backward();
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_FLOAT_EQ(x.grad().flat(i), y.value().flat(i));
  }
}

TEST(GradCheckTest, CompositeExpressionMatchesNumeric) {
  // A small MLP-like composite: sum(sigmoid(x W1) W2).
  Rng rng(13);
  std::vector<Variable> params{
      Param(Tensor::Uniform({2, 3}, -1, 1, rng)),
      Param(Tensor::Uniform({3, 4}, -1, 1, rng)),
      Param(Tensor::Uniform({4, 1}, -1, 1, rng))};
  ExpectGradOk(
      [](const auto& p) {
        return SumAll(MatMul(Sigmoid(MatMul(p[0], p[1])), p[2]));
      },
      params);
}

// ---- Fused ops (DESIGN.md §9) ----
//
// Each fused op must (1) match its composed primitive chain bit-for-bit in
// the forward pass and (2) pass a numeric gradient check through its
// single-node backward.

bool BitEqualTensors(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

Variable ApplyActComposed(const Variable& v, Act act) {
  switch (act) {
    case Act::kIdentity:
      return v;
    case Act::kRelu:
      return Relu(v);
    case Act::kSigmoid:
      return Sigmoid(v);
    case Act::kTanh:
      return Tanh(v);
  }
  return v;
}

TEST(FusedOpsTest, LinearBiasActMatchesComposedBitForBit) {
  Rng rng(21);
  Variable x = Param(Tensor::Uniform({9, 5}, -2, 2, rng));
  Variable w = Param(Tensor::Uniform({5, 7}, -1, 1, rng));
  Variable b = Param(Tensor::Uniform({7}, -1, 1, rng));
  for (Act act : {Act::kIdentity, Act::kRelu, Act::kSigmoid, Act::kTanh}) {
    Variable fused = LinearBiasAct(x, w, b, act);
    Variable composed = ApplyActComposed(Add(MatMul(x, w), b), act);
    EXPECT_TRUE(BitEqualTensors(fused.value(), composed.value()))
        << "act=" << static_cast<int>(act);
  }
  // No-bias form.
  Variable fused = LinearBiasAct(x, w, Variable(), Act::kSigmoid);
  Variable composed = Sigmoid(MatMul(x, w));
  EXPECT_TRUE(BitEqualTensors(fused.value(), composed.value()));
}

TEST(FusedOpsTest, LinearBiasActGradients) {
  Rng rng(22);
  for (Act act : {Act::kIdentity, Act::kRelu, Act::kSigmoid, Act::kTanh}) {
    std::vector<Variable> params{Param(Tensor::Uniform({4, 3}, 0.1f, 2, rng)),
                                 Param(Tensor::Uniform({3, 5}, -1, 1, rng)),
                                 Param(Tensor::Uniform({5}, -1, 1, rng))};
    ExpectGradOk(
        [act](const auto& p) {
          return SumAll(LinearBiasAct(p[0], p[1], p[2], act));
        },
        params);
  }
}

TEST(FusedOpsTest, DualLinearBiasMatchesComposedAndGradients) {
  Rng rng(23);
  Variable x = Param(Tensor::Uniform({6, 4}, -1, 1, rng));
  Variable wx = Param(Tensor::Uniform({4, 8}, -1, 1, rng));
  Variable h = Param(Tensor::Uniform({6, 2}, -1, 1, rng));
  Variable wh = Param(Tensor::Uniform({2, 8}, -1, 1, rng));
  Variable b = Param(Tensor::Uniform({8}, -1, 1, rng));
  Variable fused = DualLinearBias(x, wx, h, wh, b);
  Variable composed = Add(Add(MatMul(x, wx), MatMul(h, wh)), b);
  EXPECT_TRUE(BitEqualTensors(fused.value(), composed.value()));

  std::vector<Variable> params{x, wx, h, wh, b};
  ExpectGradOk(
      [](const auto& p) {
        return SumAll(DualLinearBias(p[0], p[1], p[2], p[3], p[4]));
      },
      params);
}

// Composed LSTM cell exactly as nn::LSTMCell's fallback path builds it.
std::pair<Variable, Variable> ComposedLstmCell(const Variable& z,
                                               const Variable& c,
                                               int64_t h) {
  Variable i_gate = Sigmoid(Slice(z, 1, 0, h));
  Variable f_gate = Sigmoid(Slice(z, 1, h, 2 * h));
  Variable g_gate = Tanh(Slice(z, 1, 2 * h, 3 * h));
  Variable o_gate = Sigmoid(Slice(z, 1, 3 * h, 4 * h));
  Variable c_next = Add(Mul(f_gate, c), Mul(i_gate, g_gate));
  Variable h_next = Mul(o_gate, Tanh(c_next));
  return {h_next, c_next};
}

TEST(FusedOpsTest, LstmCellMatchesComposedBitForBit) {
  Rng rng(24);
  const int64_t h = 3;
  Variable z = Param(Tensor::Uniform({5, 4 * h}, -2, 2, rng));
  Variable c = Param(Tensor::Uniform({5, h}, -1, 1, rng));
  Variable c_next = LstmCellState(z, c);
  Variable h_next = LstmCellOutput(z, c_next);
  auto [h_ref, c_ref] = ComposedLstmCell(z, c, h);
  EXPECT_TRUE(BitEqualTensors(c_next.value(), c_ref.value()));
  EXPECT_TRUE(BitEqualTensors(h_next.value(), h_ref.value()));
}

TEST(FusedOpsTest, LstmCellGradients) {
  Rng rng(25);
  const int64_t h = 2;
  std::vector<Variable> params{Param(Tensor::Uniform({3, 4 * h}, -1, 1, rng)),
                               Param(Tensor::Uniform({3, h}, -1, 1, rng))};
  // Loss touches both h' and c' so every gate block gets gradient,
  // including o through LstmCellOutput and the c' diamond.
  ExpectGradOk(
      [](const auto& p) {
        Variable c_next = LstmCellState(p[0], p[1]);
        Variable h_next = LstmCellOutput(p[0], c_next);
        return SumAll(Add(h_next, c_next));
      },
      params);
}

// Composed GRU combine exactly as nn::GRUCell's fallback path builds it.
Variable ComposedGruCombine(const Variable& zx, const Variable& zh,
                            const Variable& h_prev, int64_t n) {
  Variable r = Sigmoid(Add(Slice(zx, 1, 0, n), Slice(zh, 1, 0, n)));
  Variable z = Sigmoid(Add(Slice(zx, 1, n, 2 * n), Slice(zh, 1, n, 2 * n)));
  Variable candidate = Tanh(Add(Slice(zx, 1, 2 * n, 3 * n),
                                Mul(r, Slice(zh, 1, 2 * n, 3 * n))));
  Variable one_minus_z = Sub(Constant(Tensor::Ones(z.shape())), z);
  return Add(Mul(one_minus_z, candidate), Mul(z, h_prev));
}

TEST(FusedOpsTest, GruCombineMatchesComposedBitForBit) {
  Rng rng(26);
  const int64_t n = 3;
  Variable zx = Param(Tensor::Uniform({5, 3 * n}, -2, 2, rng));
  Variable zh = Param(Tensor::Uniform({5, 3 * n}, -2, 2, rng));
  Variable h = Param(Tensor::Uniform({5, n}, -1, 1, rng));
  Variable fused = GruCellCombine(zx, zh, h);
  Variable composed = ComposedGruCombine(zx, zh, h, n);
  EXPECT_TRUE(BitEqualTensors(fused.value(), composed.value()));
}

TEST(FusedOpsTest, GruCombineGradients) {
  Rng rng(27);
  const int64_t n = 2;
  std::vector<Variable> params{Param(Tensor::Uniform({3, 3 * n}, -1, 1, rng)),
                               Param(Tensor::Uniform({3, 3 * n}, -1, 1, rng)),
                               Param(Tensor::Uniform({3, n}, -1, 1, rng))};
  ExpectGradOk(
      [](const auto& p) {
        return SumAll(GruCellCombine(p[0], p[1], p[2]));
      },
      params);
}

}  // namespace
}  // namespace ag
}  // namespace kt
