// Tests for the low-precision GEMM families (tensor/quant.h), the FMA
// fp32 variant, the per-shape autotuner (tensor/autotune.h), and the
// cached CPU probe (core/cpu.h) they all dispatch through.
//
// The contracts under test:
//   * cpu::Get() is a cached, overridable view of the host ISA.
//   * bf16/int8 GEMMs are bit-identical across portable/SIMD kernels and
//     thread counts, and track the fp32 reference within their documented
//     error bounds on awkward shapes around the register tiles.
//   * tiled_fma diverges from the reference only within fp32 rounding
//     noise, and kAuto only reaches it inside a relaxed-precision region.
//   * The autotuner's cache round-trips, rejects corruption and foreign
//     CPUs by falling back to re-measurement, and its published table is
//     consulted by exact shape.
#include "tensor/quant.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cpu.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "tensor/autotune.h"
#include "tensor/gemm.h"

namespace kt {
namespace {

void FillUniform(std::vector<float>& v, Rng& rng, double lo = -1.0,
                 double hi = 1.0) {
  for (float& x : v) x = static_cast<float>(rng.Uniform(lo, hi));
}

bool BitsEqual(const std::vector<float>& x, const std::vector<float>& y) {
  return x.size() == y.size() &&
         (x.empty() ||
          std::memcmp(x.data(), y.data(), sizeof(float) * x.size()) == 0);
}

// Serial fp32 reference: the same ascending-k chain as GemmKernel::kReference.
std::vector<float> ReferenceGemm(const std::vector<float>& a,
                                 const std::vector<float>& b, int64_t m,
                                 int64_t k, int64_t n) {
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a[static_cast<size_t>(i * k + p)] *
               b[static_cast<size_t>(p * n + j)];
      }
      c[static_cast<size_t>(i * n + j)] = acc;
    }
  }
  return c;
}

// The awkward-extent sweep shared by every backend test: everything from
// the issue's {1,3,7,8,9,64,65} grid that straddles kMR=4/8 rows and the
// kNR=8 panel width, thinned so the full cross product stays fast.
struct Shape {
  int64_t m, k, n;
};
const std::vector<Shape>& SweepShapes() {
  static const std::vector<Shape> shapes = {
      {1, 1, 1},  {1, 3, 7},   {1, 64, 65}, {3, 7, 9},   {3, 9, 1},
      {7, 8, 8},  {8, 7, 3},   {8, 8, 64},  {9, 65, 7},  {9, 9, 9},
      {64, 3, 8}, {64, 65, 9}, {65, 64, 8}, {65, 9, 65}, {64, 64, 64},
  };
  return shapes;
}

// ---- core/cpu.h ----

TEST(CpuProbeTest, MatchesBuiltinAndIsStable) {
  const cpu::Features& f1 = cpu::Get();
  const cpu::Features& f2 = cpu::Get();
  EXPECT_EQ(&f1, &f2);  // one cached probe, not one per call
#if defined(__x86_64__)
  EXPECT_EQ(f1.avx2, static_cast<bool>(__builtin_cpu_supports("avx2")));
  EXPECT_EQ(f1.fma, static_cast<bool>(__builtin_cpu_supports("fma")));
#else
  EXPECT_FALSE(f1.avx2);
  EXPECT_FALSE(f1.fma);
#endif
}

TEST(CpuProbeTest, IdStringReflectsFeatures) {
  cpu::Features none;
  cpu::SetForTest(&none);
  EXPECT_EQ(cpu::IdString(), "scalar");
  cpu::Features both;
  both.avx2 = true;
  both.fma = true;
  cpu::SetForTest(&both);
  EXPECT_EQ(cpu::IdString(), "avx2+fma");
  cpu::SetForTest(nullptr);
  EXPECT_FALSE(cpu::IdString().empty());
}

// ---- backend registry ----

TEST(GemmBackendRegistryTest, StableOrderAndLookup) {
  const auto& backends = GemmBackends();
  ASSERT_EQ(backends.size(), 5u);
  EXPECT_EQ(backends[0].name, "reference");
  EXPECT_EQ(backends[1].name, "tiled");
  EXPECT_EQ(backends[2].name, "tiled_fma");
  EXPECT_EQ(backends[3].name, "bf16");
  EXPECT_EQ(backends[4].name, "int8");
  // reference and tiled are always available, dispatchable, bit-exact.
  for (int i : {0, 1}) {
    EXPECT_TRUE(backends[i].available) << backends[i].name;
    EXPECT_TRUE(backends[i].dispatchable) << backends[i].name;
    EXPECT_TRUE(backends[i].bit_exact) << backends[i].name;
  }
  // The low-precision families are never SetGemmKernel targets.
  EXPECT_FALSE(backends[3].dispatchable);
  EXPECT_FALSE(backends[4].dispatchable);
  EXPECT_FALSE(backends[2].bit_exact);

  EXPECT_EQ(FindGemmBackend("tiled"), &backends[1]);
  EXPECT_EQ(FindGemmBackend("nope"), nullptr);

  GemmKernel kernel = GemmKernel::kAuto;
  EXPECT_TRUE(GemmKernelByName("reference", &kernel));
  EXPECT_EQ(kernel, GemmKernel::kReference);
  EXPECT_TRUE(GemmKernelByName("auto", &kernel));
  EXPECT_EQ(kernel, GemmKernel::kAuto);
  EXPECT_FALSE(GemmKernelByName("bf16", &kernel));  // not dispatchable
  EXPECT_FALSE(GemmKernelByName("", &kernel));
  EXPECT_STREQ(GemmKernelName(GemmKernel::kTiledFma), "tiled_fma");
}

// ---- bf16 conversions ----

TEST(Bf16ConvTest, RoundTripsRepresentableValues) {
  for (float v : {0.0f, -0.0f, 1.0f, -2.0f, 0.5f, 96.0f, -0.15625f}) {
    EXPECT_EQ(quant::FloatFromBf16(quant::Bf16FromFloat(v)), v) << v;
  }
}

TEST(Bf16ConvTest, RoundsToNearestEven) {
  // bf16 keeps 7 mantissa bits, so the step at 1.0 is 2^-7. The midpoint
  // 1.0 + 2^-8 ties, and round-to-nearest-even keeps the even mantissa.
  const float halfway = 1.0f + std::ldexp(1.0f, -8);
  EXPECT_EQ(quant::FloatFromBf16(quant::Bf16FromFloat(halfway)), 1.0f);
  // Just above the midpoint rounds up to the next representable value.
  const float above = 1.0f + std::ldexp(1.0f, -8) + std::ldexp(1.0f, -15);
  EXPECT_EQ(quant::FloatFromBf16(quant::Bf16FromFloat(above)),
            1.0f + std::ldexp(1.0f, -7));
}

TEST(Bf16ConvTest, RelativeErrorWithinHalfStep) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.Uniform(-100.0, 100.0));
    const float back = quant::FloatFromBf16(quant::Bf16FromFloat(v));
    EXPECT_LE(std::fabs(back - v), std::fabs(v) * (1.0f / 256.0f)) << v;
  }
}

TEST(Bf16ConvTest, PreservesNanAndInfinity) {
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(quant::FloatFromBf16(quant::Bf16FromFloat(nan))));
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(quant::FloatFromBf16(quant::Bf16FromFloat(inf)), inf);
  EXPECT_EQ(quant::FloatFromBf16(quant::Bf16FromFloat(-inf)), -inf);
}

// ---- bf16 GEMM ----

TEST(GemmBf16Test, ErrorBoundOnAwkwardShapes) {
  Rng rng(21);
  for (const Shape& s : SweepShapes()) {
    std::vector<float> a(static_cast<size_t>(s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.n));
    FillUniform(a, rng);
    FillUniform(b, rng);
    const quant::Bf16Panels panels = quant::PackBf16(b.data(), s.k, s.n);
    std::vector<float> c(static_cast<size_t>(s.m * s.n));
    quant::GemmBf16(a.data(), panels, c.data(), s.m);
    const std::vector<float> ref = ReferenceGemm(a, b, s.m, s.k, s.n);
    // Documented bound: k * max|a| * max|b| * 2^-8 (operands in [-1, 1]),
    // which already carries ~2x slack over the half-step rounding error.
    const double bound =
        static_cast<double>(s.k) / 256.0 + 1e-6;
    for (size_t i = 0; i < c.size(); ++i) {
      EXPECT_LE(std::fabs(static_cast<double>(c[i]) - ref[i]), bound)
          << s.m << "x" << s.k << "x" << s.n << " element " << i;
    }
  }
}

TEST(GemmBf16Test, PortableAndSimdBitIdentical) {
  Rng rng(22);
  for (const Shape& s : SweepShapes()) {
    std::vector<float> a(static_cast<size_t>(s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.n));
    FillUniform(a, rng);
    FillUniform(b, rng);
    const quant::Bf16Panels panels = quant::PackBf16(b.data(), s.k, s.n);
    std::vector<float> simd(static_cast<size_t>(s.m * s.n));
    std::vector<float> portable(simd.size());
    quant::GemmBf16(a.data(), panels, simd.data(), s.m);
    quant::internal::SetSimdEnabledForTest(false);
    quant::GemmBf16(a.data(), panels, portable.data(), s.m);
    quant::internal::SetSimdEnabledForTest(true);
    EXPECT_TRUE(BitsEqual(simd, portable))
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmBf16Test, BitIdenticalAcrossThreadCounts) {
  const int previous_threads = GetNumThreads();
  Rng rng(23);
  // Big enough to cross the row-parallel threshold (m*k*n >= 1<<18).
  const int64_t m = 96, k = 64, n = 64;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  FillUniform(a, rng);
  FillUniform(b, rng);
  const quant::Bf16Panels panels = quant::PackBf16(b.data(), k, n);
  SetNumThreads(1);
  std::vector<float> serial(static_cast<size_t>(m * n));
  quant::GemmBf16(a.data(), panels, serial.data(), m);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    std::vector<float> out(serial.size());
    quant::GemmBf16(a.data(), panels, out.data(), m);
    EXPECT_TRUE(BitsEqual(out, serial)) << "threads=" << threads;
  }
  SetNumThreads(previous_threads);
}

// ---- int8 quantization ----

TEST(QuantizeTest, CalibrateHandlesZeroAndScales) {
  const float zeros[4] = {0, 0, 0, 0};
  EXPECT_EQ(quant::CalibrateSymmetric(zeros, 4).scale, 1.0f);
  EXPECT_EQ(quant::CalibrateSymmetric(nullptr, 0).scale, 1.0f);
  const float vals[3] = {0.5f, -2.54f, 1.0f};
  EXPECT_FLOAT_EQ(quant::CalibrateSymmetric(vals, 3).scale, 2.54f / 127.0f);
}

TEST(QuantizeTest, RoundsAndSaturates) {
  quant::QuantParams params;
  params.scale = 0.5f;
  const float x[6] = {0.0f, 0.6f, -0.6f, 100.0f, -100.0f, 0.25f};
  int8_t q[6];
  quant::QuantizeSymmetric(x, 6, params, q);
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[1], 1);    // 1.2 -> 1
  EXPECT_EQ(q[2], -1);
  EXPECT_EQ(q[3], 127);  // saturates, never wraps
  EXPECT_EQ(q[4], -127); // symmetric: -127, not -128
  EXPECT_EQ(q[5], 0);    // 0.5 ties to even
}

// ---- int8 GEMM ----

TEST(GemmInt8Test, ExactWhenScalesAreLossless) {
  // Both operands hold integers and contain a +-127 so CalibrateSymmetric
  // lands exactly on scale = 1: quantization is lossless, the integer
  // accumulator is exact, and the GEMM returns the true product bits.
  const int64_t m = 5, k = 16, n = 9;
  Rng rng(31);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& x : a)
    x = std::floor(static_cast<float>(rng.Uniform(-20.0, 20.0)));
  for (float& x : b)
    x = std::floor(static_cast<float>(rng.Uniform(-20.0, 20.0)));
  a[0] = 127.0f;
  b[0] = -127.0f;
  const quant::Int8Panels panels = quant::PackInt8(b.data(), k, n);
  const quant::QuantParams a_params = quant::CalibrateSymmetric(
      a.data(), static_cast<int64_t>(a.size()));
  ASSERT_EQ(a_params.scale, 1.0f);
  ASSERT_EQ(panels.params.scale, 1.0f);
  std::vector<float> c(static_cast<size_t>(m * n));
  quant::GemmInt8FromFloat(a.data(), a_params, panels, c.data(), m);
  const std::vector<float> ref = ReferenceGemm(a, b, m, k, n);
  EXPECT_TRUE(BitsEqual(c, ref));
}

TEST(GemmInt8Test, ErrorBoundOnAwkwardShapes) {
  Rng rng(32);
  for (const Shape& s : SweepShapes()) {
    std::vector<float> a(static_cast<size_t>(s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.n));
    FillUniform(a, rng);
    FillUniform(b, rng);
    const quant::Int8Panels panels = quant::PackInt8(b.data(), s.k, s.n);
    const quant::QuantParams a_params = quant::CalibrateSymmetric(
        a.data(), static_cast<int64_t>(a.size()));
    std::vector<float> c(static_cast<size_t>(s.m * s.n));
    quant::GemmInt8FromFloat(a.data(), a_params, panels, c.data(), s.m);
    const std::vector<float> ref = ReferenceGemm(a, b, s.m, s.k, s.n);
    // |delta(ab)| <= |a| db + |b| da + da db with da = sa/2, db = sb/2,
    // summed over k; operands are in [-1, 1].
    const double sa = a_params.scale, sb = panels.params.scale;
    const double bound =
        static_cast<double>(s.k) * (sb / 2 + sa / 2 + sa * sb / 4) + 1e-5;
    for (size_t i = 0; i < c.size(); ++i) {
      EXPECT_LE(std::fabs(static_cast<double>(c[i]) - ref[i]), bound)
          << s.m << "x" << s.k << "x" << s.n << " element " << i;
    }
  }
}

TEST(GemmInt8Test, PortableAndSimdBitIdentical) {
  Rng rng(33);
  for (const Shape& s : SweepShapes()) {
    std::vector<float> a(static_cast<size_t>(s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.n));
    FillUniform(a, rng);
    FillUniform(b, rng);
    const quant::Int8Panels panels = quant::PackInt8(b.data(), s.k, s.n);
    const quant::QuantParams a_params = quant::CalibrateSymmetric(
        a.data(), static_cast<int64_t>(a.size()));
    std::vector<float> simd(static_cast<size_t>(s.m * s.n));
    std::vector<float> portable(simd.size());
    quant::GemmInt8FromFloat(a.data(), a_params, panels, simd.data(), s.m);
    quant::internal::SetSimdEnabledForTest(false);
    quant::GemmInt8FromFloat(a.data(), a_params, panels, portable.data(),
                             s.m);
    quant::internal::SetSimdEnabledForTest(true);
    EXPECT_TRUE(BitsEqual(simd, portable))
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmInt8Test, BitIdenticalAcrossThreadCounts) {
  const int previous_threads = GetNumThreads();
  Rng rng(34);
  const int64_t m = 96, k = 64, n = 64;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  FillUniform(a, rng);
  FillUniform(b, rng);
  const quant::Int8Panels panels = quant::PackInt8(b.data(), k, n);
  const quant::QuantParams a_params =
      quant::CalibrateSymmetric(a.data(), static_cast<int64_t>(a.size()));
  SetNumThreads(1);
  std::vector<float> serial(static_cast<size_t>(m * n));
  quant::GemmInt8FromFloat(a.data(), a_params, panels, serial.data(), m);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    std::vector<float> out(serial.size());
    quant::GemmInt8FromFloat(a.data(), a_params, panels, out.data(), m);
    EXPECT_TRUE(BitsEqual(out, serial)) << "threads=" << threads;
  }
  SetNumThreads(previous_threads);
}

TEST(GemmInt8Test, FromFloatMatchesManualQuantization) {
  Rng rng(35);
  const int64_t m = 7, k = 33, n = 9;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  FillUniform(a, rng);
  FillUniform(b, rng);
  const quant::Int8Panels panels = quant::PackInt8(b.data(), k, n);
  const quant::QuantParams a_params =
      quant::CalibrateSymmetric(a.data(), static_cast<int64_t>(a.size()));
  std::vector<float> via_float(static_cast<size_t>(m * n));
  quant::GemmInt8FromFloat(a.data(), a_params, panels, via_float.data(), m);
  std::vector<int8_t> aq(a.size());
  quant::QuantizeSymmetric(a.data(), static_cast<int64_t>(a.size()),
                           a_params, aq.data());
  std::vector<float> via_int8(via_float.size());
  quant::GemmInt8(aq.data(), a_params, panels, via_int8.data(), m);
  EXPECT_TRUE(BitsEqual(via_float, via_int8));
}

// ---- tiled_fma ----

TEST(GemmFmaTest, WithinFp32RoundingOfReference) {
  const GemmBackendDesc* fma = FindGemmBackend("tiled_fma");
  ASSERT_NE(fma, nullptr);
  if (!fma->available) GTEST_SKIP() << "no FMA on this host";
  const GemmKernel previous = GetGemmKernel();
  Rng rng(41);
  for (const Shape& s : SweepShapes()) {
    std::vector<float> a(static_cast<size_t>(s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.n));
    FillUniform(a, rng);
    FillUniform(b, rng);
    std::vector<float> out(static_cast<size_t>(s.m * s.n), 0.0f);
    SetGemmKernel(GemmKernel::kTiledFma);
    Gemm(a.data(), b.data(), out.data(), s.m, s.k, s.n);
    SetGemmKernel(previous);
    const std::vector<float> ref = ReferenceGemm(a, b, s.m, s.k, s.n);
    // FMA skips one rounding per multiply-add: the divergence is bounded
    // by the fp32 accumulation error, k * eps * accumulated magnitude.
    const double bound = static_cast<double>(s.k) * std::ldexp(1.0, -23) *
                             static_cast<double>(s.k) +
                         1e-9;
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_LE(std::fabs(static_cast<double>(out[i]) - ref[i]), bound)
          << s.m << "x" << s.k << "x" << s.n;
    }
  }
}

TEST(GemmFmaTest, AutoStaysBitExactInStrictRegions) {
  const GemmBackendDesc* fma = FindGemmBackend("tiled_fma");
  ASSERT_NE(fma, nullptr);
  if (!fma->available) GTEST_SKIP() << "no FMA on this host";
  autotune::ClearPublishedTable();
  // Big enough that the kAuto heuristic picks the tiled family.
  const int64_t m = 64, k = 64, n = 64;
  Rng rng(42);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  FillUniform(a, rng);
  FillUniform(b, rng);
  const GemmKernel previous = GetGemmKernel();
  SetGemmKernel(GemmKernel::kTiled);
  std::vector<float> tiled(static_cast<size_t>(m * n), 0.0f);
  Gemm(a.data(), b.data(), tiled.data(), m, k, n);
  SetGemmKernel(GemmKernel::kTiledFma);
  std::vector<float> fma_out(tiled.size(), 0.0f);
  Gemm(a.data(), b.data(), fma_out.data(), m, k, n);
  SetGemmKernel(GemmKernel::kAuto);

  // Default (strict) region: kAuto must reproduce the bit-exact tiled
  // family even though FMA is available and faster.
  std::vector<float> strict(tiled.size(), 0.0f);
  Gemm(a.data(), b.data(), strict.data(), m, k, n);
  EXPECT_TRUE(BitsEqual(strict, tiled));

  // Relaxed region: kAuto may (and, with FMA available and no tuned
  // table, does) select tiled_fma.
  std::vector<float> relaxed(tiled.size(), 0.0f);
  {
    FpRegionScope scope(FpRegion::kRelaxed);
    Gemm(a.data(), b.data(), relaxed.data(), m, k, n);
  }
  EXPECT_TRUE(BitsEqual(relaxed, fma_out));
  SetGemmKernel(previous);
}

// ---- autotuner ----

class AutotuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    autotune::ClearPublishedTable();
    path_ = ::testing::TempDir() + "/kt_autotune_test.cache";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    autotune::ClearPublishedTable();
    std::remove(path_.c_str());
  }

  static void WriteFile(const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
    std::fclose(f);
  }

  std::string path_;
};

TEST_F(AutotuneTest, CacheRoundTrips) {
  std::vector<autotune::Entry> entries(2);
  entries[0].m = 8;
  entries[0].k = 64;
  entries[0].n = 32;
  entries[0].strict_kernel = GemmKernel::kTiled;
  entries[0].relaxed_kernel = GemmKernel::kTiledFma;
  entries[1].m = 1;
  entries[1].k = 16;
  entries[1].n = 1;
  entries[1].strict_kernel = GemmKernel::kReference;
  entries[1].relaxed_kernel = GemmKernel::kReference;
  ASSERT_TRUE(autotune::SaveCacheFile(path_, entries));
  std::vector<autotune::Entry> loaded;
  ASSERT_TRUE(autotune::LoadCacheFile(path_, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].m, entries[i].m);
    EXPECT_EQ(loaded[i].k, entries[i].k);
    EXPECT_EQ(loaded[i].n, entries[i].n);
    EXPECT_EQ(loaded[i].strict_kernel, entries[i].strict_kernel);
    EXPECT_EQ(loaded[i].relaxed_kernel, entries[i].relaxed_kernel);
    EXPECT_TRUE(loaded[i].from_cache);
  }
}

TEST_F(AutotuneTest, LoadRejectsMissingCorruptAndForeignCpu) {
  std::vector<autotune::Entry> out;
  EXPECT_FALSE(autotune::LoadCacheFile(path_, &out));  // missing

  WriteFile(path_, "not an autotune cache\n");
  EXPECT_FALSE(autotune::LoadCacheFile(path_, &out));  // bad header
  EXPECT_TRUE(out.empty());

  // Right header, corrupt body: the WHOLE file is discarded (a partial
  // table could silently shadow better tuned entries).
  WriteFile(path_, "ktgemm-autotune v1 cpu=" + cpu::IdString() +
                       "\n8 64 32 tiled tiled_fma\n8 64 garbage\n");
  EXPECT_FALSE(autotune::LoadCacheFile(path_, &out));
  EXPECT_TRUE(out.empty());

  // A cache written by a different CPU is ignored entirely.
  WriteFile(path_,
            "ktgemm-autotune v1 cpu=some-other-cpu\n8 64 32 tiled tiled\n");
  EXPECT_FALSE(autotune::LoadCacheFile(path_, &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(AutotuneTest, TuneShapesPublishesAndCaches) {
  autotune::Options options;
  options.cache_path = path_;
  options.samples = 1;
  options.target_batch_seconds = 1e-5;  // keep measurement trivial
  const std::vector<std::array<int64_t, 3>> shapes = {
      {4, 8, 8}, {16, 16, 16}, {4, 8, 8},  // duplicate dropped
      {0, 8, 8},                           // degenerate dropped
  };
  const autotune::Result first = autotune::TuneShapes(shapes, options);
  EXPECT_EQ(first.measured, 2);
  EXPECT_EQ(first.cached, 0);
  ASSERT_EQ(first.entries.size(), 2u);

  // Published table answers exact-shape lookups for both regions.
  GemmKernel kernel = GemmKernel::kAuto;
  EXPECT_TRUE(autotune::LookupForDispatch(4, 8, 8, /*relaxed=*/false,
                                          &kernel));
  EXPECT_TRUE(kernel == GemmKernel::kReference ||
              kernel == GemmKernel::kTiled);
  EXPECT_TRUE(autotune::LookupForDispatch(16, 16, 16, /*relaxed=*/true,
                                          &kernel));
  EXPECT_FALSE(autotune::LookupForDispatch(5, 8, 8, false, &kernel));
  EXPECT_EQ(autotune::PublishedEntries().size(), 2u);

  // Second run with the same shapes: pure cache hits, no re-measurement.
  const autotune::Result second = autotune::TuneShapes(shapes, options);
  EXPECT_EQ(second.measured, 0);
  EXPECT_EQ(second.cached, 2);

  autotune::ClearPublishedTable();
  EXPECT_FALSE(autotune::LookupForDispatch(4, 8, 8, false, &kernel));
  EXPECT_TRUE(autotune::PublishedEntries().empty());
}

TEST_F(AutotuneTest, CorruptCacheFallsBackToMeasurement) {
  WriteFile(path_, "ktgemm-autotune v1 cpu=" + cpu::IdString() +
                       "\nthis line is garbage\n");
  autotune::Options options;
  options.cache_path = path_;
  options.samples = 1;
  options.target_batch_seconds = 1e-5;
  const autotune::Result result =
      autotune::TuneShapes({{4, 8, 8}}, options);
  EXPECT_EQ(result.measured, 1);
  EXPECT_EQ(result.cached, 0);
  // The rewritten cache is valid again.
  std::vector<autotune::Entry> reloaded;
  EXPECT_TRUE(autotune::LoadCacheFile(path_, &reloaded));
  EXPECT_EQ(reloaded.size(), 1u);
}

TEST_F(AutotuneTest, TunedStrictWinnerStaysBitExact) {
  // Whatever the tuner picked for the strict region, dispatching through
  // kAuto must still reproduce the reference bits: the strict candidate
  // set only ever contains bit-exact families.
  autotune::Options options;
  options.samples = 1;
  options.target_batch_seconds = 1e-5;
  const int64_t m = 16, k = 16, n = 16;
  autotune::TuneShapes({{m, k, n}}, options);
  Rng rng(51);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  FillUniform(a, rng);
  FillUniform(b, rng);
  std::vector<float> out(static_cast<size_t>(m * n), 0.0f);
  Gemm(a.data(), b.data(), out.data(), m, k, n);
  EXPECT_TRUE(BitsEqual(out, ReferenceGemm(a, b, m, k, n)));
}

}  // namespace
}  // namespace kt
