#include "tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <functional>
#include <ostream>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/rng.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace kt {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.dim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({2, 3});
  Tensor o = Tensor::Ones({2, 3});
  Tensor f = Tensor::Full({2, 3}, 2.5f);
  EXPECT_EQ(z.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(z.flat(i), 0.0f);
    EXPECT_FLOAT_EQ(o.flat(i), 1.0f);
    EXPECT_FLOAT_EQ(f.flat(i), 2.5f);
  }
}

TEST(TensorTest, AtIndexing) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_FLOAT_EQ(t.at({1, 2}), 7.0f);
  EXPECT_FLOAT_EQ(t.flat(5), 7.0f);
}

TEST(TensorTest, FromValuesChecksCount) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_DEATH(Tensor({2, 2}, {1, 2, 3}), "KT_CHECK");
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor t({2, 3});
  Tensor r = t.Reshape({3, 2});
  r.flat(0) = 9.0f;
  EXPECT_FLOAT_EQ(t.flat(0), 9.0f);
}

TEST(TensorTest, ReshapeInfersDimension) {
  Tensor t({2, 6});
  Tensor r = t.Reshape({4, -1});
  EXPECT_EQ(r.size(1), 3);
  EXPECT_DEATH(t.Reshape({5, -1}), "KT_CHECK");
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t({3});
  Tensor c = t.Clone();
  c.flat(0) = 5.0f;
  EXPECT_FLOAT_EQ(t.flat(0), 0.0f);
}

TEST(TensorTest, TransposeLast2) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.TransposeLast2();
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(tt.at({0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(tt.at({2, 0}), 3.0f);
}

TEST(TensorTest, TransposeLast2Batched) {
  Tensor t({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor tt = t.TransposeLast2();
  EXPECT_FLOAT_EQ(tt.at({0, 0, 1}), 3.0f);
  EXPECT_FLOAT_EQ(tt.at({1, 1, 0}), 6.0f);
}

TEST(TensorTest, SliceMiddleDim) {
  Tensor t({2, 4, 2});
  for (int64_t i = 0; i < t.numel(); ++i) t.flat(i) = static_cast<float>(i);
  Tensor s = t.Slice(1, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 2}));
  EXPECT_FLOAT_EQ(s.at({0, 0, 0}), t.at({0, 1, 0}));
  EXPECT_FLOAT_EQ(s.at({1, 1, 1}), t.at({1, 2, 1}));
}

TEST(TensorTest, SliceNegativeDim) {
  Tensor t({2, 4});
  Tensor s = t.Slice(-1, 0, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
}

TEST(TensorTest, ConcatDim0AndDim1) {
  Tensor a({1, 2}, {1, 2});
  Tensor b({1, 2}, {3, 4});
  Tensor c0 = Tensor::Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c0.at({1, 1}), 4.0f);
  Tensor c1 = Tensor::Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), (Shape{1, 4}));
  EXPECT_FLOAT_EQ(c1.at({0, 2}), 3.0f);
}

TEST(TensorTest, ConcatRoundTripsWithSlice) {
  Rng rng(3);
  Tensor a = Tensor::Uniform({2, 3, 4}, -1, 1, rng);
  Tensor b = Tensor::Uniform({2, 2, 4}, -1, 1, rng);
  Tensor c = Tensor::Concat({a, b}, 1);
  EXPECT_TRUE(c.Slice(1, 0, 3).AllClose(a));
  EXPECT_TRUE(c.Slice(1, 3, 5).AllClose(b));
}

TEST(TensorTest, IndexSelectRows) {
  Tensor table({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor rows = Tensor::IndexSelectRows(table, {2, 0, 2});
  EXPECT_EQ(rows.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(rows.at({0, 0}), 5.0f);
  EXPECT_FLOAT_EQ(rows.at({1, 1}), 2.0f);
  EXPECT_FLOAT_EQ(rows.at({2, 1}), 6.0f);
}

TEST(TensorTest, AllCloseDetectsNanAndDiff) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.0f + 1e-3f});
  EXPECT_FALSE(a.AllClose(b));
  EXPECT_TRUE(a.AllClose(b, /*rtol=*/1e-2f));
  Tensor n({2}, {1.0f, NAN});
  EXPECT_FALSE(n.AllClose(n));
}

// ---- Broadcasting ----

TEST(BroadcastTest, ShapeRules) {
  EXPECT_EQ(BroadcastShape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShape({2, 1}, {1, 4}), (Shape{2, 4}));
  EXPECT_EQ(BroadcastShape({}, {5}), (Shape{5}));
  EXPECT_DEATH(BroadcastShape({2, 3}, {4}), "KT_CHECK");
}

TEST(BroadcastTest, BroadcastsTo) {
  EXPECT_TRUE(BroadcastsTo({3}, {2, 3}));
  EXPECT_TRUE(BroadcastsTo({1, 3}, {2, 3}));
  EXPECT_FALSE(BroadcastsTo({2}, {2, 3}));
  EXPECT_FALSE(BroadcastsTo({2, 3}, {3}));
}

TEST(BroadcastTest, AddBiasPattern) {
  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias({3}, {10, 20, 30});
  Tensor y = Add(x, bias);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 11.0f);
  EXPECT_FLOAT_EQ(y.at({1, 2}), 36.0f);
}

TEST(BroadcastTest, MulColumnBroadcast) {
  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col({2, 1}, {2, 10});
  Tensor y = Mul(x, col);
  EXPECT_FLOAT_EQ(y.at({0, 2}), 6.0f);
  EXPECT_FLOAT_EQ(y.at({1, 0}), 40.0f);
}

TEST(BroadcastTest, ReduceToShapeIsAdjoint) {
  Rng rng(5);
  Tensor g = Tensor::Uniform({2, 3, 4}, -1, 1, rng);
  Tensor reduced = ReduceToShape(g, {3, 1});
  EXPECT_EQ(reduced.shape(), (Shape{3, 1}));
  // Entry (j, 0) must equal the sum over dims 0 and 2.
  float expected = 0.0f;
  for (int64_t i = 0; i < 2; ++i)
    for (int64_t k = 0; k < 4; ++k) expected += g.at({i, 1, k});
  EXPECT_NEAR(reduced.at({1, 0}), expected, 1e-5f);
}

// ---- Elementwise ops ----

TEST(OpsTest, UnaryFunctions) {
  Tensor x({3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(Relu(x).flat(0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(x).flat(2), 2.0f);
  EXPECT_NEAR(Sigmoid(x).flat(1), 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(x).flat(2), std::tanh(2.0f), 1e-6f);
  EXPECT_NEAR(Exp(x).flat(0), std::exp(-1.0f), 1e-6f);
  EXPECT_FLOAT_EQ(Abs(x).flat(0), 1.0f);
  EXPECT_FLOAT_EQ(Neg(x).flat(2), -2.0f);
}

TEST(OpsTest, GreaterEqualMask) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {2, 2, 2});
  Tensor m = GreaterEqualMask(a, b);
  EXPECT_FLOAT_EQ(m.flat(0), 0.0f);
  EXPECT_FLOAT_EQ(m.flat(1), 1.0f);
  EXPECT_FLOAT_EQ(m.flat(2), 1.0f);
}

// ---- Matrix products ----

TEST(MatMulTest, Known2x2) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 19.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 22.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 43.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 50.0f);
}

TEST(MatMulTest, MatchesNaiveReference) {
  Rng rng(7);
  const int64_t m = 9, k = 13, n = 7;
  Tensor a = Tensor::Uniform({m, k}, -1, 1, rng);
  Tensor b = Tensor::Uniform({k, n}, -1, 1, rng);
  Tensor c = MatMul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float expected = 0.0f;
      for (int64_t p = 0; p < k; ++p) expected += a.at({i, p}) * b.at({p, j});
      EXPECT_NEAR(c.at({i, j}), expected, 1e-4f);
    }
  }
}

TEST(MatMulTest, BatchMatMul) {
  Rng rng(9);
  Tensor a = Tensor::Uniform({3, 2, 4}, -1, 1, rng);
  Tensor b = Tensor::Uniform({3, 4, 5}, -1, 1, rng);
  Tensor c = BatchMatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 5}));
  // Batch 1 must equal the standalone 2-D product.
  Tensor a1 = a.Slice(0, 1, 2).Reshape({2, 4});
  Tensor b1 = b.Slice(0, 1, 2).Reshape({4, 5});
  Tensor c1 = c.Slice(0, 1, 2).Reshape({2, 5});
  EXPECT_TRUE(c1.AllClose(MatMul(a1, b1), 1e-4f));
}

TEST(GemmTest, TransposedVariantsAgree) {
  Rng rng(11);
  const int64_t m = 5, k = 6, n = 4;
  Tensor a = Tensor::Uniform({m, k}, -1, 1, rng);
  Tensor b = Tensor::Uniform({k, n}, -1, 1, rng);
  Tensor expected = MatMul(a, b);

  // GemmTransA: pass a^T stored as [k, m].
  Tensor at = a.TransposeLast2();
  Tensor c1 = Tensor::Zeros({m, n});
  GemmTransAAccumulate(at.data(), b.data(), c1.data(), m, k, n);
  EXPECT_TRUE(c1.AllClose(expected, 1e-4f));

  // GemmTransB: pass b^T stored as [n, k].
  Tensor bt = b.TransposeLast2();
  Tensor c2 = Tensor::Zeros({m, n});
  GemmTransBAccumulate(a.data(), bt.data(), c2.data(), m, k, n);
  EXPECT_TRUE(c2.AllClose(expected, 1e-4f));
}

// ---- Reductions & softmax ----

TEST(ReduceTest, SumMeanAll) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(SumAll(t).item(), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(t).item(), 2.5f);
}

TEST(ReduceTest, SumAlongDims) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = Sum(t, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0.flat(0), 5.0f);
  Tensor s1 = Sum(t, 1, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1.flat(1), 15.0f);
  Tensor m1 = Mean(t, -1);
  EXPECT_FLOAT_EQ(m1.flat(0), 2.0f);
}

TEST(ReduceTest, MaxLastDimWithArgmax) {
  Tensor t({2, 3}, {1, 9, 3, 4, 2, 8});
  std::vector<int64_t> argmax;
  Tensor m = MaxLastDim(t, &argmax);
  EXPECT_FLOAT_EQ(m.flat(0), 9.0f);
  EXPECT_FLOAT_EQ(m.flat(1), 8.0f);
  EXPECT_EQ(argmax[0], 1);
  EXPECT_EQ(argmax[1], 2);
}

TEST(SoftmaxTest, RowsSumToOneAndOrderPreserved) {
  Rng rng(13);
  Tensor t = Tensor::Uniform({4, 6}, -5, 5, rng);
  Tensor s = SoftmaxLastDim(t);
  for (int64_t r = 0; r < 4; ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < 6; ++c) total += s.at({r, c});
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
  // Softmax is monotone: argmax is preserved.
  std::vector<int64_t> before, after;
  MaxLastDim(t, &before);
  MaxLastDim(s, &after);
  EXPECT_EQ(before, after);
}

TEST(SoftmaxTest, StableForLargeInputs) {
  Tensor t({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = SoftmaxLastDim(t);
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(s.flat(i), 1.0f / 3.0f, 1e-5f);
}

// ---- Property-style parameterized sweep over broadcast shapes ----

struct BroadcastCase {
  Shape a, b, expected;
};

class BroadcastShapeSweep : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastShapeSweep, AddProducesExpectedShapeAndValues) {
  const BroadcastCase& c = GetParam();
  Rng rng(17);
  Tensor a = Tensor::Uniform(c.a, -2, 2, rng);
  Tensor b = Tensor::Uniform(c.b, -2, 2, rng);
  Tensor sum = Add(a, b);
  EXPECT_EQ(sum.shape(), c.expected);
  // Commutativity under broadcasting.
  EXPECT_TRUE(sum.AllClose(Add(b, a)));
  // Sub(a+b, b) recovers a broadcast to the output shape.
  Tensor recovered = Sub(sum, b);
  Tensor a_broadcast = Add(a, Tensor::Zeros(c.expected));
  EXPECT_TRUE(recovered.AllClose(a_broadcast, 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastShapeSweep,
    ::testing::Values(BroadcastCase{{2, 3}, {2, 3}, {2, 3}},
                      BroadcastCase{{2, 3}, {3}, {2, 3}},
                      BroadcastCase{{2, 1, 4}, {3, 1}, {2, 3, 4}},
                      BroadcastCase{{1}, {5, 5}, {5, 5}},
                      BroadcastCase{{4, 1}, {1, 6}, {4, 6}},
                      BroadcastCase{{}, {2, 2}, {2, 2}}));

// ---- Parallel-vs-serial GEMM equivalence ----
//
// The row-blocked parallel GEMM kernels promise *bit-identical* output for
// every thread count (each output row keeps the serial kernel's per-element
// FP update order). The sweep straddles the m*k*n parallel threshold so both
// the serial fallback and the pool path are exercised.

struct GemmCase {
  int64_t m, k, n;
};

void PrintTo(const GemmCase& c, std::ostream* os) {
  *os << c.m << "x" << c.k << "x" << c.n;
}

class GemmParallelEquivalence : public ::testing::TestWithParam<GemmCase> {
 protected:
  void SetUp() override { previous_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(previous_threads_); }

  static bool BitEqual(const Tensor& a, const Tensor& b) {
    return std::memcmp(a.data(), b.data(),
                       sizeof(float) * static_cast<size_t>(a.numel())) == 0;
  }

  int previous_threads_ = 1;
};

TEST_P(GemmParallelEquivalence, AllKernelsBitIdenticalToSerial) {
  const GemmCase& c = GetParam();
  Rng rng(41);
  // Operands for every layout: plain (m,k)x(k,n), TransA (k,m)x(k,n),
  // TransB (m,k)x(n,k); a shared non-zero accumulator seed.
  Tensor a = Tensor::Uniform({c.m, c.k}, -1, 1, rng);
  Tensor b = Tensor::Uniform({c.k, c.n}, -1, 1, rng);
  Tensor at = Tensor::Uniform({c.k, c.m}, -1, 1, rng);
  Tensor bt = Tensor::Uniform({c.n, c.k}, -1, 1, rng);
  Tensor seed = Tensor::Uniform({c.m, c.n}, -1, 1, rng);

  struct Kernel {
    const char* name;
    std::function<void(Tensor&)> run;
  };
  const std::vector<Kernel> kernels = {
      {"Gemm",
       [&](Tensor& out) { Gemm(a.data(), b.data(), out.data(), c.m, c.k, c.n); }},
      {"GemmAccumulate",
       [&](Tensor& out) {
         out = seed.Clone();
         GemmAccumulate(a.data(), b.data(), out.data(), c.m, c.k, c.n);
       }},
      {"GemmTransAAccumulate",
       [&](Tensor& out) {
         out = seed.Clone();
         GemmTransAAccumulate(at.data(), b.data(), out.data(), c.m, c.k, c.n);
       }},
      {"GemmTransBAccumulate",
       [&](Tensor& out) {
         out = seed.Clone();
         GemmTransBAccumulate(a.data(), bt.data(), out.data(), c.m, c.k, c.n);
       }},
  };

  for (const Kernel& kernel : kernels) {
    Tensor reference({c.m, c.n});
    SetNumThreads(1);
    kernel.run(reference);
    for (int threads : {2, 4, 8}) {
      SetNumThreads(threads);
      Tensor out({c.m, c.n});
      kernel.run(out);
      EXPECT_TRUE(BitEqual(out, reference))
          << kernel.name << " diverges from serial at threads=" << threads;
    }
  }
}

// Shapes straddling the parallel threshold (m*k*n >= 1<<18 = 262144 flops):
// the first four stay on the serial path, the rest engage the pool, with
// 64x64x64 and 256x8x128 sitting exactly on the boundary.
INSTANTIATE_TEST_SUITE_P(Shapes, GemmParallelEquivalence,
                         ::testing::Values(GemmCase{9, 13, 7},      //
                                           GemmCase{2, 64, 64},     //
                                           GemmCase{64, 64, 63},    //
                                           GemmCase{1, 512, 513},   // m < 2
                                           GemmCase{64, 64, 64},    //
                                           GemmCase{256, 8, 128},   //
                                           GemmCase{96, 50, 70},    //
                                           GemmCase{33, 17, 471},   //
                                           GemmCase{128, 128, 128}));

// ---- Tiled-vs-reference kernel equivalence ----
//
// The tiled/packed kernels promise the same bits as the serial reference
// loops for every shape: each C element is a single ascending-k accumulator
// chain in both families. The sweep crosses awkward extents around the
// register-tile sizes (kMR=4 rows, kNR=8 panel columns), plus empty dims,
// and checks reference/tiled/auto at several thread counts against the
// serial reference result.
TEST(GemmKernelEquivalence, TiledAndAutoMatchReferenceBitForBit) {
  const GemmKernel previous_kernel = GetGemmKernel();
  const int previous_threads = GetNumThreads();
  // Dims from {1, 2, 3, 7, 17, 64, 65} plus tile+-1 (3..5 around kMR, 7..9
  // around kNR) and 0 for the empty cases.
  const std::vector<int64_t> ms = {0, 1, 2, 3, 4, 5, 7, 8, 9, 17, 64, 65};
  const std::vector<int64_t> ks = {0, 1, 3, 8, 17, 64};
  const std::vector<int64_t> ns = {0, 1, 4, 7, 8, 9, 17, 65};
  Rng rng(97);
  auto fill = [&rng](std::vector<float>& v) {
    for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  };
  auto bits_equal = [](const std::vector<float>& x,
                       const std::vector<float>& y) {
    // Empty guard: data() of an empty vector may be null, and memcmp with a
    // null pointer is UB even for length 0.
    return x.size() == y.size() &&
           (x.empty() ||
            std::memcmp(x.data(), y.data(), sizeof(float) * x.size()) == 0);
  };
  for (int64_t m : ms) {
    for (int64_t k : ks) {
      for (int64_t n : ns) {
        std::vector<float> a(static_cast<size_t>(m * k));
        std::vector<float> b(static_cast<size_t>(k * n));
        std::vector<float> at(static_cast<size_t>(k * m));
        std::vector<float> bt(static_cast<size_t>(n * k));
        std::vector<float> seed(static_cast<size_t>(m * n));
        fill(a), fill(b), fill(at), fill(bt), fill(seed);

        struct Form {
          const char* name;
          std::function<void(std::vector<float>&)> run;
        };
        const std::vector<Form> forms = {
            {"Gemm",
             [&](std::vector<float>& out) {
               Gemm(a.data(), b.data(), out.data(), m, k, n);
             }},
            {"GemmAccumulate",
             [&](std::vector<float>& out) {
               out = seed;
               GemmAccumulate(a.data(), b.data(), out.data(), m, k, n);
             }},
            {"GemmTransAAccumulate",
             [&](std::vector<float>& out) {
               out = seed;
               GemmTransAAccumulate(at.data(), b.data(), out.data(), m, k, n);
             }},
            {"GemmTransBAccumulate",
             [&](std::vector<float>& out) {
               out = seed;
               GemmTransBAccumulate(a.data(), bt.data(), out.data(), m, k, n);
             }},
        };
        for (const Form& form : forms) {
          std::vector<float> reference(static_cast<size_t>(m * n));
          SetGemmKernel(GemmKernel::kReference);
          SetNumThreads(1);
          form.run(reference);
          for (GemmKernel kernel : {GemmKernel::kTiled, GemmKernel::kAuto}) {
            SetGemmKernel(kernel);
            for (int threads : {1, 2, 8}) {
              SetNumThreads(threads);
              std::vector<float> out(static_cast<size_t>(m * n));
              form.run(out);
              EXPECT_TRUE(bits_equal(out, reference))
                  << form.name << " " << m << "x" << k << "x" << n
                  << " diverges from serial reference (kernel="
                  << (kernel == GemmKernel::kTiled ? "tiled" : "auto")
                  << ", threads=" << threads << ")";
            }
          }
        }
      }
    }
  }
  SetGemmKernel(previous_kernel);
  SetNumThreads(previous_threads);
}

}  // namespace
}  // namespace kt
