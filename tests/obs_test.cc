// kt::obs tests: exact counters under kt::parallel, histograms, scoped
// timers, Chrome trace emission, the JSONL run log, flag wiring — and the
// subsystem's core contract: observability on or off never changes a loss,
// an influence score, or a serialized model byte, at any thread count.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fileio.h"
#include "core/flags.h"
#include "core/parallel.h"
#include "data/simulator.h"
#include "nn/serialize.h"
#include "obs/obs.h"
#include "obs/obs_flags.h"
#include "obs/runlog.h"
#include "obs/trace.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"

namespace kt {
namespace obs {
namespace {

// Every test in this file leaves the obs runtime the way it found it:
// disabled, no tracing, no run log, zeroed metrics. The A/B test below
// depends on "off" really meaning off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = GetNumThreads();
    Cleanup();
  }
  void TearDown() override {
    Cleanup();
    SetNumThreads(saved_threads_);
  }
  static void Cleanup() {
    (void)StopTracing();
    ResetRunLog();
    SetEnabled(false);
    ResetAllMetrics();
  }
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "obs_test_" + name;
  }
  int saved_threads_ = 1;
};

TEST_F(ObsTest, CounterCountsExactlyUnderParallelFor) {
  SetEnabled(true);
  Counter* counter = Counter::Get("test.parallel_adds");
  counter->Reset();
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    counter->Reset();
    constexpr int64_t kN = 100000;
    ParallelForRange(0, kN, /*grain=*/128,
                     [&](int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) counter->Add(1);
                     });
    EXPECT_EQ(counter->Value(), kN) << "lost increments at threads=" << threads;
  }
}

TEST_F(ObsTest, CounterRegistryReturnsStablePointers) {
  Counter* a = Counter::Get("test.stable");
  Counter* b = Counter::Get("test.stable");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "test.stable");
  a->Add(3);
  a->Add(4);
  EXPECT_EQ(b->Value(), 7);
  a->Reset();
  EXPECT_EQ(b->Value(), 0);
}

TEST_F(ObsTest, HistogramTracksExactCountSumMinMax) {
  Histogram* hist = Histogram::Get("test.hist");
  hist->Reset();
  hist->Record(3.0);
  hist->Record(100.0);
  hist->Record(0.25);
  const HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 103.25);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_NEAR(snap.Mean(), 103.25 / 3.0, 1e-12);
  // Bucket-resolution percentiles: p0 lands in the sub-1 bucket, p100 in
  // the bucket holding 100 (64 <= 100 < 128).
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 128.0);
}

TEST_F(ObsTest, HistogramExactUnderParallelRecording) {
  SetNumThreads(8);
  Histogram* hist = Histogram::Get("test.parallel_hist");
  hist->Reset();
  constexpr int64_t kN = 20000;
  ParallelForRange(0, kN, /*grain=*/64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hist->Record(2.0);
  });
  const HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, kN);
  EXPECT_DOUBLE_EQ(snap.sum, 2.0 * static_cast<double>(kN));
  EXPECT_DOUBLE_EQ(snap.min, 2.0);
  EXPECT_DOUBLE_EQ(snap.max, 2.0);
}

TEST_F(ObsTest, ScopedTimerRecordsOnlyWhenEnabled) {
  Histogram* hist = Histogram::Get("test/scope");
  hist->Reset();
  {  // disabled: no clock call, no record
    KT_OBS_SCOPE("test/scope");
  }
  EXPECT_EQ(hist->Snapshot().count, 0);
  SetEnabled(true);
  {
    KT_OBS_SCOPE("test/scope");
  }
  SetEnabled(false);
  const HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_GE(snap.min, 0.0);
}

TEST_F(ObsTest, SummaryStringListsNonEmptyMetrics) {
  SetEnabled(true);
  Counter::Get("test.summary_counter")->Add(5);
  Histogram::Get("test.summary_hist")->Record(10.0);
  const std::string summary = SummaryString();
  EXPECT_NE(summary.find("test.summary_counter = 5"), std::string::npos);
  EXPECT_NE(summary.find("test.summary_hist"), std::string::npos);
}

TEST_F(ObsTest, CurrentRssBytesIsPositiveOnLinux) {
#ifdef __linux__
  EXPECT_GT(CurrentRssBytes(), 0);
#endif
}

// ---- Chrome trace emission ----

TEST_F(ObsTest, TraceFileIsValidChromeTraceJson) {
  const std::string path = TempPath("trace.json");
  StartTracing(path);
  EXPECT_TRUE(TracingActive());
  EXPECT_TRUE(Enabled()) << "tracing implies metric recording";
  {
    KT_OBS_SCOPE("trace/outer");
    SetNumThreads(4);
    ParallelForRange(0, 64, /*grain=*/4, [&](int64_t begin, int64_t end) {
      KT_OBS_SCOPE("trace/chunk");
      (void)begin;
      (void)end;
    });
  }
  ASSERT_TRUE(StopTracing().ok());
  EXPECT_FALSE(TracingActive());

  std::string json;
  ASSERT_TRUE(ReadFileToString(path, &json).ok());
  // Structural checks (tools/obs_check.cc runs the full validator): the
  // envelope, the metadata naming the main track, both scope names, and
  // complete-event slices.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"trace/outer\""), std::string::npos);
  EXPECT_NE(json.find("\"trace/chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces/brackets are a cheap proxy for well-formed JSON here.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(ObsTest, StopTracingWithoutStartIsOk) {
  EXPECT_TRUE(StopTracing().ok());
}

// ---- Run log ----

TEST_F(ObsTest, RunLogWritesOneJsonObjectPerEpoch) {
  const std::string path = TempPath("run.jsonl");
  SetRunLogPath(path);
  EXPECT_TRUE(RunLogActive());
  EXPECT_TRUE(Enabled()) << "run log implies metric recording";

  RunLogEntry entry;
  entry.run = "test-model";
  entry.epoch = 0;
  entry.train_loss = 0.693;
  entry.val_auc = 0.5;
  entry.val_acc = 0.5;
  entry.epoch_ms = 2000.0;
  entry.tokens = 1000;
  entry.gemm_flops = 123456;
  entry.ckpt_ms = 1.5;
  AppendRunLogEntry(entry);
  entry.epoch = 1;
  AppendRunLogEntry(entry);

  std::string text;
  ASSERT_TRUE(ReadFileToString(path, &text).ok());
  // Two newline-terminated lines, each a flat JSON object with the schema
  // keys; tokens_per_sec is derived (1000 tokens / 2s = 500/s).
  size_t lines = 0;
  for (char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"run\":\"test-model\""), std::string::npos);
  EXPECT_NE(text.find("\"epoch\":0"), std::string::npos);
  EXPECT_NE(text.find("\"epoch\":1"), std::string::npos);
  EXPECT_NE(text.find("\"tokens_per_sec\":500.0"), std::string::npos);
  EXPECT_NE(text.find("\"gemm_flops\":123456"), std::string::npos);
  EXPECT_NE(text.find("\"rss_bytes\":"), std::string::npos);

  ResetRunLog();
  EXPECT_FALSE(RunLogActive());
}

TEST_F(ObsTest, RunLogEscapesRunTag) {
  const std::string path = TempPath("run_escape.jsonl");
  SetRunLogPath(path);
  RunLogEntry entry;
  entry.run = "model \"quoted\"\nline";
  AppendRunLogEntry(entry);
  std::string text;
  ASSERT_TRUE(ReadFileToString(path, &text).ok());
  EXPECT_NE(text.find("model \\\"quoted\\\"\\nline"), std::string::npos);
}

// ---- Flag wiring ----

TEST_F(ObsTest, ApplyCommonObsFlagsArmsRunLogAndRecording) {
  CommonFlagValues values;
  values.run_log_path = TempPath("flags_run.jsonl");
  ApplyCommonObsFlags(values);
  EXPECT_TRUE(RunLogActive());
  EXPECT_TRUE(Enabled());
}

TEST_F(ObsTest, ApplyCommonObsFlagsDefaultIsInert) {
  ApplyCommonObsFlags(CommonFlagValues{});
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(TracingActive());
  EXPECT_FALSE(RunLogActive());
}

// ---- The A/B contract ----

bool BitEqualFloats(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

data::Dataset ObsTinyDataset() {
  data::SimulatorConfig config;
  config.num_students = 30;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 8;
  config.max_responses = 16;
  config.seed = 9;
  data::StudentSimulator sim(config);
  return sim.Generate();
}

rckt::RcktConfig ObsSmallRckt() {
  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 16;
  config.num_layers = 1;
  config.dropout = 0.0f;
  config.lr = 3e-3f;
  config.lambda = 0.1f;
  config.seed = 4;
  return config;
}

// One short training trajectory: a few optimizer steps, the resulting
// influence scores, and the serialized model bytes.
struct Trajectory {
  std::vector<float> losses;
  std::vector<float> scores;
  std::string model_bytes;
};

Trajectory RunTrajectory(const data::Dataset& ds, const std::string& save_path) {
  rckt::RCKT model(ds.num_questions, ds.num_concepts, ObsSmallRckt());
  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    if (seq.length() > 7) samples.push_back({&seq, 7});
    if (samples.size() == 4) break;
  }
  data::Batch batch = rckt::MakePrefixBatch(samples);
  Trajectory out;
  for (int step = 0; step < 3; ++step) {
    out.losses.push_back(model.TrainStep(batch));
  }
  out.scores = model.ScoreTargets(batch);
  KT_CHECK(nn::SaveModule(model, save_path).ok());
  KT_CHECK(ReadFileToString(save_path, &out.model_bytes).ok());
  return out;
}

// The acceptance contract: with observability off (the default) the
// instrumented build behaves exactly like the pre-instrumentation build,
// and turning every obs feature on (counters, tracing, run log) changes
// nothing about the computation — same losses, same influence scores, same
// serialized bytes — at 1, 2, and 8 threads.
TEST_F(ObsTest, TelemetryOnOffIsBitIdenticalAcrossThreadCounts) {
  data::Dataset ds = ObsTinyDataset();
  Trajectory reference;
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);

    Cleanup();  // obs fully off
    Trajectory off = RunTrajectory(ds, TempPath("ab_off.ktw"));

    SetEnabled(true);
    StartTracing(TempPath("ab_trace.json"));
    SetRunLogPath(TempPath("ab_run.jsonl"));
    Trajectory on = RunTrajectory(ds, TempPath("ab_on.ktw"));
    ASSERT_TRUE(StopTracing().ok());
    ResetRunLog();
    SetEnabled(false);

    EXPECT_TRUE(BitEqualFloats(off.losses, on.losses))
        << "losses diverge at threads=" << threads;
    EXPECT_TRUE(BitEqualFloats(off.scores, on.scores))
        << "influence scores diverge at threads=" << threads;
    EXPECT_EQ(off.model_bytes, on.model_bytes)
        << "serialized model bytes diverge at threads=" << threads;

    // And the PR 1 invariant composes with obs: identical across threads.
    if (reference.losses.empty()) {
      reference = off;
    } else {
      EXPECT_TRUE(BitEqualFloats(off.losses, reference.losses));
      EXPECT_TRUE(BitEqualFloats(off.scores, reference.scores));
      EXPECT_EQ(off.model_bytes, reference.model_bytes);
    }
  }
}

// With telemetry on, the instrumented call sites actually fire: the GEMM
// counters count, the scope histograms fill, and the trace carries slices.
TEST_F(ObsTest, InstrumentationFiresWhenEnabled) {
  data::Dataset ds = ObsTinyDataset();
  SetEnabled(true);
  ResetAllMetrics();
  const std::string trace_path = TempPath("fire_trace.json");
  StartTracing(trace_path);
  (void)RunTrajectory(ds, TempPath("fire.ktw"));
  ASSERT_TRUE(StopTracing().ok());

  EXPECT_GT(Counter::Get("gemm.calls")->Value(), 0);
  EXPECT_GT(Counter::Get("gemm.flops")->Value(), 0);
  EXPECT_GT(Counter::Get("rckt.fanout_passes")->Value(), 0);
  EXPECT_GT(Histogram::Get("rckt/train_step")->Snapshot().count, 0);
  EXPECT_GT(Histogram::Get("rckt/score_targets")->Snapshot().count, 0);

  std::string json;
  ASSERT_TRUE(ReadFileToString(trace_path, &json).ok());
  EXPECT_NE(json.find("rckt/train_step"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace kt
