#include <cmath>
#include <cstring>
#include <iterator>

#include <gtest/gtest.h>

#include "core/parallel.h"

#include "data/simulator.h"
#include "models/embedder.h"
#include "rckt/counterfactual.h"
#include "rckt/encoders.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"
#include "rckt/samples.h"

namespace kt {
namespace rckt {
namespace {

using models::kResponseMasked;

// ---- Counterfactual construction (paper Sec. IV-B, Table I) ----

TEST(CounterfactualTest, AssumedFactualSetsTarget) {
  // Fig. 1 example: responses to q1..q5 = {1, 0, 1, 1, 0}, target q6.
  const std::vector<int> responses = {1, 0, 1, 1, 0, 0};
  auto plus = AssumedFactualCategories(responses, 5, 1);
  EXPECT_EQ(plus, (std::vector<int>{1, 0, 1, 1, 0, 1}));
  auto minus = AssumedFactualCategories(responses, 5, 0);
  EXPECT_EQ(minus, (std::vector<int>{1, 0, 1, 1, 0, 0}));
}

TEST(CounterfactualTest, BackwardFlipToIncorrectMasksCorrect) {
  // Table I, CF(t+1)-: target flipped incorrect -> correct history masked,
  // incorrect retained.
  const std::vector<int> responses = {1, 0, 1, 1, 0, 1};
  auto cf = BackwardCounterfactualCategories(responses, 5, 0);
  EXPECT_EQ(cf, (std::vector<int>{kResponseMasked, 0, kResponseMasked,
                                  kResponseMasked, 0, 0}));
}

TEST(CounterfactualTest, BackwardFlipToCorrectMasksIncorrect) {
  // Table I, CF(t+1)+: target flipped correct -> incorrect history masked.
  const std::vector<int> responses = {1, 0, 1, 1, 0, 0};
  auto cf = BackwardCounterfactualCategories(responses, 5, 1);
  EXPECT_EQ(cf, (std::vector<int>{1, kResponseMasked, 1, 1, kResponseMasked,
                                  1}));
}

TEST(CounterfactualTest, MonotonicityDisabledKeepsHistory) {
  const std::vector<int> responses = {1, 0, 1, 1, 0, 1};
  auto cf = BackwardCounterfactualCategories(responses, 5, 0,
                                             /*apply_monotonicity=*/false);
  EXPECT_EQ(cf, (std::vector<int>{1, 0, 1, 1, 0, 0}));
}

TEST(CounterfactualTest, ForwardFlipCorrectToIncorrect) {
  // Paper Eq. 4 / Fig. 3: flipping q3 (correct) to incorrect retains the
  // incorrect responses and masks the other correct ones; the target is
  // masked because it is the prediction.
  const std::vector<int> responses = {1, 0, 1, 1, 0, 1};
  auto cf = ForwardCounterfactualCategories(responses, /*target=*/5,
                                            /*flip_index=*/2);
  EXPECT_EQ(cf, (std::vector<int>{kResponseMasked, 0, 0, kResponseMasked, 0,
                                  kResponseMasked}));
}

TEST(CounterfactualTest, ForwardFlipIncorrectToCorrect) {
  const std::vector<int> responses = {1, 0, 1, 1, 0, 1};
  auto cf = ForwardCounterfactualCategories(responses, 5, 1);
  // Flip index 1 (incorrect -> correct): correct responses retained,
  // incorrect (index 4) masked.
  EXPECT_EQ(cf, (std::vector<int>{1, 1, 1, 1, kResponseMasked,
                                  kResponseMasked}));
}

TEST(CounterfactualTest, ForwardCannotFlipTarget) {
  const std::vector<int> responses = {1, 0, 1};
  EXPECT_DEATH(ForwardCounterfactualCategories(responses, 2, 2), "KT_CHECK");
}

TEST(CounterfactualTest, MaskByCorrectness) {
  const std::vector<int> responses = {1, 0, 1, 0};
  EXPECT_EQ(MaskByCorrectness(responses, /*keep_correct=*/true),
            (std::vector<int>{1, kResponseMasked, 1, kResponseMasked}));
  EXPECT_EQ(MaskByCorrectness(responses, /*keep_correct=*/false),
            (std::vector<int>{kResponseMasked, 0, kResponseMasked, 0}));
}

// Property sweep: invariants of the backward construction over random
// sequences.
class BackwardCfProperty : public ::testing::TestWithParam<int> {};

TEST_P(BackwardCfProperty, Invariants) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int64_t n = 4 + rng.UniformInt(12);
  std::vector<int> responses(static_cast<size_t>(n));
  for (auto& r : responses) r = rng.Bernoulli(0.6) ? 1 : 0;
  const int64_t target = n - 1;
  for (int flip : {0, 1}) {
    auto cf = BackwardCounterfactualCategories(responses, target, flip);
    // Target holds the flipped value.
    EXPECT_EQ(cf[static_cast<size_t>(target)], flip);
    for (int64_t i = 0; i < target; ++i) {
      const int original = responses[static_cast<size_t>(i)];
      const int category = cf[static_cast<size_t>(i)];
      if (original == flip) {
        EXPECT_EQ(category, original) << "same-direction response retained";
      } else {
        EXPECT_EQ(category, kResponseMasked) << "opposite response masked";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSequences, BackwardCfProperty,
                         ::testing::Range(0, 12));

// ---- Bidirectional encoders: the no-self-information property ----

class EncoderLeakTest : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(EncoderLeakTest, OutputAtPositionIgnoresItsOwnInput) {
  Rng rng(31);
  auto encoder = MakeBiEncoder(GetParam(), /*dim=*/8, /*num_layers=*/2,
                               /*num_heads=*/2, /*dropout=*/0.0f, rng);
  Tensor a = Tensor::Uniform({2, 6, 8}, -1, 1, rng);
  nn::Context ctx;
  Tensor h1 = encoder->Encode(ag::Constant(a), ctx).value();

  // Perturb position 3 of row 0 only.
  Tensor a2 = a.Clone();
  for (int64_t d = 0; d < 8; ++d) a2.at({0, 3, d}) += 7.0f;
  Tensor h2 = encoder->Encode(ag::Constant(a2), ctx).value();

  // h at position 3 must be IDENTICAL (no self-leakage)...
  for (int64_t d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(h1.at({0, 3, d}), h2.at({0, 3, d}))
        << "self-information leak at dim " << d;
  }
  // ...while neighbors must change (the perturbation is visible to them).
  float diff = 0.0f;
  for (int64_t d = 0; d < 8; ++d) {
    diff += std::fabs(h1.at({0, 2, d}) - h2.at({0, 2, d}));
    diff += std::fabs(h1.at({0, 4, d}) - h2.at({0, 4, d}));
  }
  EXPECT_GT(diff, 1e-4f);
  // Other batch rows are unaffected.
  for (int64_t t = 0; t < 6; ++t) {
    for (int64_t d = 0; d < 8; ++d) {
      EXPECT_FLOAT_EQ(h1.at({1, t, d}), h2.at({1, t, d}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, EncoderLeakTest,
                         ::testing::Values(EncoderKind::kDKT,
                                           EncoderKind::kSAKT,
                                           EncoderKind::kAKT),
                         [](const auto& info) {
                           return EncoderKindName(info.param);
                         });

TEST(ShiftAndAddTest, CombinesNeighborStates) {
  Tensor f({1, 3, 2}, {1, 1, 2, 2, 3, 3});
  Tensor b({1, 3, 2}, {10, 10, 20, 20, 30, 30});
  Tensor h = ShiftAndAdd(ag::Constant(f), ag::Constant(b)).value();
  // h_0 = 0 + b_1 = 20; h_1 = f_0 + b_2 = 1 + 30; h_2 = f_1 + 0 = 2.
  EXPECT_FLOAT_EQ(h.at({0, 0, 0}), 20.0f);
  EXPECT_FLOAT_EQ(h.at({0, 1, 0}), 31.0f);
  EXPECT_FLOAT_EQ(h.at({0, 2, 0}), 2.0f);
}

// ---- Samples / protocol ----

data::Dataset TinyDataset() {
  data::SimulatorConfig config;
  config.num_students = 40;
  config.num_questions = 30;
  config.num_concepts = 5;
  config.min_responses = 8;
  config.max_responses = 20;
  config.seed = 12;
  data::StudentSimulator sim(config);
  return sim.Generate();
}

TEST(SamplesTest, EnumeratesStrideAndEndpoint) {
  data::Dataset ds = TinyDataset();
  auto samples = MakePrefixSamples(ds, /*stride=*/5, /*min_target=*/4);
  ASSERT_FALSE(samples.empty());
  // Every window's endpoint is present.
  size_t endpoints = 0;
  for (const auto& s : samples) {
    EXPECT_GE(s.target, 4);
    EXPECT_LT(s.target, s.sequence->length());
    if (s.target == s.sequence->length() - 1) ++endpoints;
  }
  EXPECT_EQ(endpoints, ds.sequences.size());
}

TEST(SamplesTest, PrefixBatchCopiesPrefix) {
  data::Dataset ds = TinyDataset();
  const auto& seq = ds.sequences[0];
  PrefixSample sample{&seq, 5};
  data::Batch batch = MakePrefixBatch({sample});
  EXPECT_EQ(batch.batch_size, 1);
  EXPECT_EQ(batch.max_len, 6);
  for (int64_t t = 0; t < 6; ++t) {
    EXPECT_EQ(batch.questions[static_cast<size_t>(t)],
              seq.interactions[static_cast<size_t>(t)].question);
  }
}

TEST(SamplesTest, MixedLengthBatchDies) {
  data::Dataset ds = TinyDataset();
  PrefixSample a{&ds.sequences[0], 5};
  PrefixSample b{&ds.sequences[1], 6};
  EXPECT_DEATH(MakePrefixBatch({a, b}), "mixed-length");
}

TEST(SamplesTest, GroupingIsEqualLengthAndComplete) {
  data::Dataset ds = TinyDataset();
  auto samples = MakePrefixSamples(ds, 3, 4);
  const size_t total = samples.size();
  Rng rng(9);
  auto batches = GroupIntoBatches(std::move(samples), 8, &rng);
  size_t grouped = 0;
  for (const auto& group : batches) {
    EXPECT_LE(group.size(), 8u);
    for (const auto& s : group) EXPECT_EQ(s.target, group.front().target);
    grouped += group.size();
  }
  EXPECT_EQ(grouped, total);
}

// ---- RCKT model ----

RcktConfig SmallRckt(EncoderKind kind) {
  RcktConfig config;
  config.encoder = kind;
  config.dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.lr = 3e-3f;
  config.lambda = 0.1f;
  config.seed = 4;
  return config;
}

data::Batch SmallPrefixBatch(const data::Dataset& ds, int64_t target = 7,
                             int64_t rows = 4) {
  std::vector<PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    if (seq.length() > target) samples.push_back({&seq, target});
    if (static_cast<int64_t>(samples.size()) == rows) break;
  }
  return MakePrefixBatch(samples);
}

TEST(RcktModelTest, ScoresAreProbabilityLike) {
  data::Dataset ds = TinyDataset();
  RCKT model(ds.num_questions, ds.num_concepts, SmallRckt(EncoderKind::kDKT));
  data::Batch batch = SmallPrefixBatch(ds);
  auto scores = model.ScoreTargets(batch);
  ASSERT_EQ(static_cast<int64_t>(scores.size()), batch.batch_size);
  for (float s : scores) {
    EXPECT_GT(s, 0.0f);
    EXPECT_LT(s, 1.0f);
  }
}

TEST(RcktModelTest, ExplanationsAreConsistentWithScores) {
  data::Dataset ds = TinyDataset();
  RCKT model(ds.num_questions, ds.num_concepts, SmallRckt(EncoderKind::kDKT));
  data::Batch batch = SmallPrefixBatch(ds);
  auto scores = model.ScoreTargets(batch);
  auto explanations = model.ExplainTargets(batch);
  ASSERT_EQ(explanations.size(), scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    const auto& ex = explanations[i];
    // Totals must equal the sum of per-position influences by class.
    float plus = 0.0f, minus = 0.0f;
    for (size_t t = 0; t + 1 < ex.influence.size(); ++t) {
      if (ex.responses[t] == 1) {
        plus += ex.influence[t];
      } else {
        minus += ex.influence[t];
      }
    }
    EXPECT_NEAR(plus, ex.total_correct, 1e-4f);
    EXPECT_NEAR(minus, ex.total_incorrect, 1e-4f);
    // sigmoid(score / t) reproduces ScoreTargets (scores are normalized by
    // the history length so AUC pools samples of different lengths fairly).
    const float t = static_cast<float>(ex.influence.size() - 1);
    const float sig = 1.0f / (1.0f + std::exp(-ex.score / t));
    EXPECT_NEAR(sig, scores[i], 1e-4f);
    EXPECT_EQ(ex.predicted_correct, scores[i] >= 0.5f);
  }
}

// Golden-value regression: influence scores for one fixed-seed simulated
// student, recorded from a known-good build. Any change to the simulator,
// initialization order, counterfactual construction, encoder math, or the
// parallel fan-out that shifts these numbers is a behavior change and must
// be deliberate (re-record the literals in that PR). The kt::parallel layer
// guarantees these values for every KT_NUM_THREADS setting.
TEST(RcktModelTest, GoldenInfluenceScoresForFixedSeed) {
  data::Dataset ds = TinyDataset();
  RCKT model(ds.num_questions, ds.num_concepts, SmallRckt(EncoderKind::kDKT));
  const auto& seq = ds.sequences[0];
  ASSERT_EQ(seq.length(), 10);
  data::Batch batch = MakePrefixBatch({{&seq, 7}});

  const auto scores = model.ScoreTargets(batch);
  const auto exact = model.ScoreTargetsExact(batch);
  const auto ex = model.ExplainTargets(batch).front();

  constexpr float kTol = 1e-5f;
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_NEAR(scores[0], 4.99373734e-01f, kTol);
  EXPECT_NEAR(exact[0], 5.00108659e-01f, kTol);
  EXPECT_NEAR(ex.total_correct, -1.73137784e-02f, kTol);
  EXPECT_NEAR(ex.total_incorrect, 2.22563744e-04f, kTol);

  const float kGoldenInfluence[] = {
      -2.15375423e-03f, -2.94029713e-04f, -1.20043755e-03f,
      -5.32943010e-03f, 2.22563744e-04f,  -4.75311279e-03f,
      -3.58301401e-03f, 0.00000000e+00f,
  };
  ASSERT_EQ(ex.influence.size(), std::size(kGoldenInfluence));
  for (size_t t = 0; t < ex.influence.size(); ++t) {
    EXPECT_NEAR(ex.influence[t], kGoldenInfluence[t], kTol) << "t=" << t;
  }
}

TEST(RcktModelTest, TrainingReducesLoss) {
  data::Dataset ds = TinyDataset();
  RCKT model(ds.num_questions, ds.num_concepts, SmallRckt(EncoderKind::kDKT));
  data::Batch batch = SmallPrefixBatch(ds, 7, 8);
  const float first = model.TrainStep(batch);
  float last = first;
  for (int step = 0; step < 12; ++step) last = model.TrainStep(batch);
  EXPECT_LT(last, first);
}

TEST(RcktModelTest, RequiresEqualLengthRows) {
  data::Dataset ds = TinyDataset();
  RCKT model(ds.num_questions, ds.num_concepts, SmallRckt(EncoderKind::kDKT));
  // Hand-build a padded (unequal) batch.
  data::ResponseSequence a;
  a.interactions = {{1, 1, {0}}, {2, 0, {1}}, {3, 1, {0}}};
  data::ResponseSequence b;
  b.interactions = {{1, 1, {0}}, {2, 0, {1}}};
  data::Batch bad = data::MakeBatch({&a, &b});
  EXPECT_DEATH(model.ScoreTargets(bad), "equal-length");
}

TEST(RcktModelTest, ConstraintAblationChangesLoss) {
  data::Dataset ds = TinyDataset();
  RcktConfig with = SmallRckt(EncoderKind::kDKT);
  RcktConfig without = with;
  without.use_constraint = false;
  RCKT model_with(ds.num_questions, ds.num_concepts, with);
  RCKT model_without(ds.num_questions, ds.num_concepts, without);
  // Identical seeds -> identical initialization -> the loss difference is
  // exactly the constraint term (non-negative).
  data::Batch batch = SmallPrefixBatch(ds, 7, 8);
  const float loss_with = model_with.TrainStep(batch);
  const float loss_without = model_without.TrainStep(batch);
  EXPECT_GE(loss_with, loss_without - 1e-5f);
}

TEST(RcktModelTest, ExactAndApproximateScoresCorrelate) {
  data::Dataset ds = TinyDataset();
  RCKT model(ds.num_questions, ds.num_concepts, SmallRckt(EncoderKind::kDKT));
  // Brief training so probabilities are not constant.
  data::Batch train_batch = SmallPrefixBatch(ds, 7, 8);
  for (int step = 0; step < 8; ++step) model.TrainStep(train_batch);

  data::Batch batch = SmallPrefixBatch(ds, 9, 8);
  auto approx = model.ScoreTargets(batch);
  auto exact = model.ScoreTargetsExact(batch);
  ASSERT_EQ(approx.size(), exact.size());
  // Spearman-free sanity: Pearson correlation positive (the paper argues
  // forward and backward influences are positively correlated).
  double ma = 0, me = 0;
  for (size_t i = 0; i < approx.size(); ++i) {
    ma += approx[i];
    me += exact[i];
  }
  ma /= static_cast<double>(approx.size());
  me /= static_cast<double>(approx.size());
  double cov = 0, va = 0, ve = 0;
  for (size_t i = 0; i < approx.size(); ++i) {
    cov += (approx[i] - ma) * (exact[i] - me);
    va += (approx[i] - ma) * (approx[i] - ma);
    ve += (exact[i] - me) * (exact[i] - me);
  }
  if (va > 1e-12 && ve > 1e-12) {
    EXPECT_GT(cov / std::sqrt(va * ve), 0.0);
  }
}

TEST(RcktModelTest, ConceptProbeProducesScores) {
  data::Dataset ds = TinyDataset();
  RCKT model(ds.num_questions, ds.num_concepts, SmallRckt(EncoderKind::kDKT));
  data::Batch batch = SmallPrefixBatch(ds);
  auto scores = model.ScoreConceptProbe(batch, {0, 1, 2}, /*concept_id=*/2);
  ASSERT_EQ(static_cast<int64_t>(scores.size()), batch.batch_size);
  for (float s : scores) {
    EXPECT_GT(s, 0.0f);
    EXPECT_LT(s, 1.0f);
  }
}

TEST(RcktConfigTest, Table3LookupCoversAllCells) {
  for (const char* dataset :
       {"assist09", "assist12", "slepemapy", "eedi"}) {
    for (EncoderKind kind :
         {EncoderKind::kDKT, EncoderKind::kSAKT, EncoderKind::kAKT}) {
      RcktConfig config = RcktConfigFor(dataset, kind);
      EXPECT_GT(config.lr, 0.0f);
      EXPECT_GT(config.lambda, 0.0f);
      EXPECT_GE(config.num_layers, 1);
      EXPECT_EQ(config.encoder, kind);
    }
  }
}

// ---- Stacked counterfactual fan-out A/B (DESIGN.md Sec. 9) ----
//
// The stacked fan-out replaces K independent generator passes with one
// K*B-row pass. Every op on the generator path computes each output row
// independently, so this is a pure scheduling change: scores and losses
// must match the per-pass path bit for bit, at every thread count.

bool BitEqualFloats(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

class StackedFanOutTest : public ::testing::TestWithParam<EncoderKind> {
 protected:
  void SetUp() override { saved_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_P(StackedFanOutTest, ScoresAndLossesBitIdenticalToPerPass) {
  data::Dataset ds = TinyDataset();
  data::Batch batch = SmallPrefixBatch(ds);

  RcktConfig stacked_config = SmallRckt(GetParam());
  stacked_config.stacked_fanout = true;
  RcktConfig per_pass_config = SmallRckt(GetParam());
  per_pass_config.stacked_fanout = false;

  std::vector<float> reference_scores;
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    // Fresh models per thread count: identical seeds give identical params,
    // so any divergence below is the fan-out path, not training history.
    RCKT stacked(ds.num_questions, ds.num_concepts, stacked_config);
    RCKT per_pass(ds.num_questions, ds.num_concepts, per_pass_config);

    auto s_stacked = stacked.ScoreTargets(batch);
    auto s_per_pass = per_pass.ScoreTargets(batch);
    EXPECT_TRUE(BitEqualFloats(s_stacked, s_per_pass))
        << "approx scores diverge at threads=" << threads;

    auto e_stacked = stacked.ScoreTargetsExact(batch);
    auto e_per_pass = per_pass.ScoreTargetsExact(batch);
    EXPECT_TRUE(BitEqualFloats(e_stacked, e_per_pass))
        << "exact scores diverge at threads=" << threads;

    // Training forward pass: the loss is computed before the optimizer
    // update, so the first step's loss must agree bit for bit too (dropout
    // is 0 in SmallRckt, so the stacked path stays active during training).
    const float loss_stacked = stacked.TrainStep(batch);
    const float loss_per_pass = per_pass.TrainStep(batch);
    EXPECT_EQ(loss_stacked, loss_per_pass)
        << "train loss diverges at threads=" << threads;

    // And the PR 1 contract still holds on the stacked path itself: the
    // same scores at every thread count.
    if (reference_scores.empty()) {
      reference_scores = s_stacked;
    } else {
      EXPECT_TRUE(BitEqualFloats(s_stacked, reference_scores))
          << "stacked scores vary across thread counts at threads="
          << threads;
    }
  }
}

TEST_P(StackedFanOutTest, GeneratorScoreTargetsStackedMatchesPerCall) {
  data::Dataset ds = TinyDataset();
  data::Batch batch = SmallPrefixBatch(ds);
  RCKT model(ds.num_questions, ds.num_concepts, SmallRckt(GetParam()));

  // Three response-variant assignments of the same batch: factual, all
  // correct, and alternating — scored stacked and one at a time.
  const int64_t rows = batch.batch_size;
  const int64_t T = batch.max_len;
  std::vector<std::vector<std::vector<int>>> variants;
  for (int v = 0; v < 3; ++v) {
    std::vector<std::vector<int>> variant(static_cast<size_t>(rows));
    for (int64_t b = 0; b < rows; ++b) {
      std::vector<int> responses(static_cast<size_t>(T));
      for (int64_t t = 0; t < T; ++t) {
        const int factual =
            batch.responses[static_cast<size_t>(batch.FlatIndex(b, t))];
        responses[static_cast<size_t>(t)] =
            v == 0 ? factual : (v == 1 ? 1 : static_cast<int>(t % 2));
      }
      variant[static_cast<size_t>(b)] = std::move(responses);
    }
    variants.push_back(std::move(variant));
  }
  const auto stacked = model.GeneratorScoreTargetsStacked(batch, variants);
  ASSERT_EQ(stacked.size(), variants.size());
  for (size_t v = 0; v < variants.size(); ++v) {
    const auto single =
        model.GeneratorScoreTargetsStacked(batch, {variants[v]});
    ASSERT_EQ(single.size(), 1u);
    EXPECT_TRUE(BitEqualFloats(stacked[v], single[0]))
        << "variant " << v << " diverges when stacked with others";
  }
  // The factual variant must agree with the plain generator score.
  EXPECT_TRUE(BitEqualFloats(stacked[0], model.GeneratorScoreTargets(batch)))
      << "factual variant diverges from GeneratorScoreTargets";
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, StackedFanOutTest,
                         ::testing::Values(EncoderKind::kDKT,
                                           EncoderKind::kSAKT,
                                           EncoderKind::kAKT),
                         [](const auto& info) {
                           switch (info.param) {
                             case EncoderKind::kDKT: return "DKT";
                             case EncoderKind::kSAKT: return "SAKT";
                             case EncoderKind::kAKT: return "AKT";
                             default: return "GRU";
                           }
                         });

// ---- End-to-end learning across all three encoders ----

class RcktLearningSuite : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(RcktLearningSuite, BeatsChanceAfterShortTraining) {
  data::SimulatorConfig config;
  config.num_students = 100;
  config.num_questions = 40;
  config.num_concepts = 5;
  config.min_responses = 15;
  config.max_responses = 35;
  config.seed = 12;
  data::StudentSimulator sim(config);
  data::Dataset ds = sim.Generate();
  Rng rng(77);
  const auto folds =
      data::KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 4, rng);
  // Fold 2 of this fixed seed; deterministic, so not flaky. (Fold-level
  // variance at this tiny scale is +-0.1 AUC; the bench suite uses larger
  // data.)
  data::FoldSplit split = data::MakeFold(ds, folds, 2, 0.15, rng);

  RCKT model(ds.num_questions, ds.num_concepts, SmallRckt(GetParam()));
  RcktTrainOptions options;
  options.max_epochs = 6;
  options.patience = 6;
  options.batch_size = 16;
  options.train_stride = 3;
  options.eval_stride = 3;
  RcktTrainResult result = TrainAndEvaluateRckt(model, split, options);
  EXPECT_GT(result.test.auc, 0.54) << model.name() << " failed to learn";
  EXPECT_GT(result.test.num_predictions, 100);
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, RcktLearningSuite,
                         ::testing::Values(EncoderKind::kDKT,
                                           EncoderKind::kSAKT,
                                           EncoderKind::kAKT),
                         [](const auto& info) {
                           return EncoderKindName(info.param);
                         });

}  // namespace
}  // namespace rckt
}  // namespace kt
