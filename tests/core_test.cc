#include <gtest/gtest.h>

#include "core/check.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/string_util.h"
#include "core/table_printer.h"
#include "core/timer.h"

namespace kt {
namespace {

TEST(CheckTest, PassesAndFails) {
  KT_CHECK(true) << "never printed";
  KT_CHECK_EQ(2 + 2, 4);
  EXPECT_DEATH(KT_CHECK_LT(3, 2) << "context", "KT_CHECK");
  EXPECT_DEATH(KT_CHECK_EQ(1, 2), "1 vs 2");
}

TEST(StatusTest, OkAndErrors) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "Ok");
  Status err = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad dim");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_DEATH(bad.value(), "NotFound");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(5);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 5);
    counts[static_cast<size_t>(v)]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
  EXPECT_DEATH(rng.UniformInt(0), "KT_CHECK");
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(23);
  Rng child = a.Fork();
  // Forked stream differs from the parent's continuation.
  EXPECT_NE(child.NextU64(), a.NextU64());
}

TEST(StringUtilTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrPrintf("%s", ""), "");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, FormatFloat) {
  EXPECT_EQ(FormatFloat(0.79468, 4), "0.7947");
  EXPECT_EQ(FormatFloat(1.0, 2), "1.00");
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"Model", "AUC"});
  table.AddRow({"DKT", "0.7706"});
  table.AddSeparator();
  table.AddRow({"RCKT-AKT", "0.7947"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| Model"), std::string::npos);
  EXPECT_NE(out.find("| RCKT-AKT | 0.7947 |"), std::string::npos);
  EXPECT_DEATH(table.AddRow({"only one"}), "KT_CHECK");
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  EXPECT_GE(timer.ElapsedMs(), 0.0);
  EXPECT_LT(timer.ElapsedSeconds(), 10.0);
}

}  // namespace
}  // namespace kt
