// Cross-module integration tests: full data -> train -> evaluate -> explain
// pipelines, exercised end to end at miniature scale.
#include <cmath>

#include <gtest/gtest.h>

#include "data/presets.h"
#include "eval/trainer.h"
#include "models/dkt.h"
#include "models/ikt.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"

namespace kt {
namespace {

data::Dataset SmallWindows() {
  data::SimulatorConfig config = data::Assist09Preset(/*scale=*/0.1);
  config.num_students = 60;
  data::StudentSimulator sim(config);
  return data::SplitIntoWindows(sim.Generate(), 50, 5);
}

TEST(IntegrationTest, PresetPipelineEndToEnd) {
  data::Dataset windows = SmallWindows();
  ASSERT_GT(windows.sequences.size(), 20u);

  Rng rng(1);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), 3, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, 0, 0.1, rng);

  models::NeuralConfig nc;
  nc.dim = 16;
  models::DKT model(windows.num_questions, windows.num_concepts, nc);
  eval::TrainOptions options;
  options.max_epochs = 3;
  options.patience = 3;
  eval::TrainResult result = eval::TrainAndEvaluate(model, split, options);
  EXPECT_GT(result.test.num_predictions, 0);
  EXPECT_GT(result.test.auc, 0.0);
  EXPECT_LT(result.test.auc, 1.0);
}

TEST(IntegrationTest, SharedSampleProtocolAlignsModels) {
  // Baselines and RCKT evaluated on the prefix-sample protocol report
  // metrics over the SAME number of prediction points.
  data::Dataset windows = SmallWindows();
  Rng rng(2);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), 3, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, 0, 0.1, rng);

  rckt::RcktTrainOptions sample_options;
  sample_options.eval_stride = 5;

  models::NeuralConfig nc;
  nc.dim = 16;
  models::DKT baseline(windows.num_questions, windows.num_concepts, nc);
  const auto baseline_eval =
      rckt::EvaluateModelOnSamples(baseline, split.test, sample_options);

  rckt::RcktConfig rc;
  rc.dim = 16;
  rckt::RCKT model(windows.num_questions, windows.num_concepts, rc);
  const auto rckt_eval = rckt::EvaluateRckt(model, split.test, sample_options);

  EXPECT_EQ(baseline_eval.num_predictions, rckt_eval.num_predictions);
  EXPECT_GT(baseline_eval.num_predictions, 0);
}

TEST(IntegrationTest, RcktAblationFlagsProduceDistinctModels) {
  data::Dataset windows = SmallWindows();
  rckt::PrefixSample sample{&windows.sequences[0],
                            windows.sequences[0].length() - 1};
  data::Batch batch = rckt::MakePrefixBatch({sample});

  rckt::RcktConfig base;
  base.dim = 16;
  base.seed = 9;
  rckt::RCKT full(windows.num_questions, windows.num_concepts, base);

  rckt::RcktConfig no_mono = base;
  no_mono.use_monotonicity = false;
  rckt::RCKT without(windows.num_questions, windows.num_concepts, no_mono);

  // Same seed means identical weights, so any score difference comes purely
  // from the counterfactual mask/retain logic.
  const float full_score = full.ScoreTargets(batch)[0];
  const float without_score = without.ScoreTargets(batch)[0];
  EXPECT_NE(full_score, without_score);
}

TEST(IntegrationTest, RcktScoresConsistentAcrossBatchSplits) {
  // Scoring rows one-at-a-time must equal scoring them in one batch
  // (no cross-row leakage anywhere in the stack).
  data::Dataset windows = SmallWindows();
  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : windows.sequences) {
    if (seq.length() > 12) samples.push_back({&seq, 12});
    if (samples.size() == 4) break;
  }
  ASSERT_EQ(samples.size(), 4u);

  rckt::RcktConfig rc;
  rc.dim = 16;
  rc.seed = 11;
  rckt::RCKT model(windows.num_questions, windows.num_concepts, rc);

  data::Batch all = rckt::MakePrefixBatch(samples);
  const auto batch_scores = model.ScoreTargets(all);
  for (size_t i = 0; i < samples.size(); ++i) {
    data::Batch single = rckt::MakePrefixBatch({samples[i]});
    const float solo = model.ScoreTargets(single)[0];
    EXPECT_NEAR(solo, batch_scores[i], 1e-5f) << "row " << i;
  }
}

TEST(IntegrationTest, InfluencesRespondToInterventionDirection) {
  // Construct a history of all-correct responses: after training the joint
  // generator briefly, flipping the target to incorrect should reduce
  // predicted correctness of retained positions on average, i.e. the
  // aggregate correct influence is finite and the explanation is coherent.
  data::Dataset windows = SmallWindows();
  rckt::RcktConfig rc;
  rc.dim = 16;
  rckt::RCKT model(windows.num_questions, windows.num_concepts, rc);

  std::vector<rckt::PrefixSample> train_samples;
  for (const auto& seq : windows.sequences) {
    if (seq.length() > 10) train_samples.push_back({&seq, 10});
    if (train_samples.size() == 24) break;
  }
  data::Batch train_batch = rckt::MakePrefixBatch(train_samples);
  for (int step = 0; step < 10; ++step) model.TrainStep(train_batch);

  const auto explanations = model.ExplainTargets(train_batch);
  int coherent = 0;
  for (const auto& ex : explanations) {
    // The signed score must match the predicted label.
    EXPECT_EQ(ex.predicted_correct, ex.score >= 0.0f);
    if (std::fabs(ex.score) > 0.0f) ++coherent;
  }
  EXPECT_GT(coherent, 0);
}

TEST(IntegrationTest, IktAndNeuralShareEvaluationPath) {
  data::Dataset windows = SmallWindows();
  Rng rng(3);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), 3, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, 0, 0.1, rng);

  models::IKT ikt(windows.num_questions, models::IktConfig{});
  eval::TrainOptions options;
  eval::TrainResult result = eval::TrainAndEvaluate(ikt, split, options);
  EXPECT_EQ(result.epochs_run, 1);  // closed-form fit
  EXPECT_GT(result.test.num_predictions, 0);
}

}  // namespace
}  // namespace kt
