// kt::ckpt tests: container-format corruption handling, atomic commit, full
// training-state round trips, and the headline guarantee — train k epochs,
// kill, resume, and the final parameters, logged losses, and influence
// scores are bit-identical to an uninterrupted run at every thread count.
#include "ckpt/ckpt.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/training_state.h"
#include "core/binio.h"
#include "core/check.h"
#include "core/fileio.h"
#include "core/parallel.h"
#include "data/simulator.h"
#include "eval/trainer.h"
#include "models/dkt.h"
#include "nn/linear.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"
#include "rckt/samples.h"

namespace kt {
namespace ckpt {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::string bytes;
  KT_CHECK(ReadFileToString(path, &bytes).ok());
  return bytes;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool BitsEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()) == 0;
}

bool BitsEqual(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!BitsEqual(a[i], b[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------------

TEST(CkptFormatTest, RoundTripsSections) {
  const std::string path = TempPath("roundtrip.ktc");
  CheckpointWriter writer;
  writer.Section("alpha") = "hello";
  std::string& beta = writer.Section("beta");
  AppendPod(&beta, static_cast<int64_t>(-7));
  ASSERT_TRUE(writer.Commit(path).ok());

  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_TRUE(reader.Has("alpha"));
  EXPECT_TRUE(reader.Has("beta"));
  EXPECT_FALSE(reader.Has("gamma"));
  std::string_view view;
  ASSERT_TRUE(reader.Find("alpha", &view).ok());
  EXPECT_EQ(view, "hello");
  ASSERT_TRUE(reader.Find("beta", &view).ok());
  BinCursor cursor(view.data(), view.size());
  int64_t value = 0;
  ASSERT_TRUE(cursor.Read(&value));
  EXPECT_EQ(value, -7);
  EXPECT_EQ(reader.Find("gamma", &view).code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(CkptFormatTest, RejectsTruncationAtEveryOffset) {
  const std::string path = TempPath("truncate.ktc");
  CheckpointWriter writer;
  writer.Section("data") = "0123456789";
  ASSERT_TRUE(writer.Commit(path).ok());
  const std::string bytes = ReadAll(path);

  const std::string cut = TempPath("truncate_cut.ktc");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(cut, bytes.substr(0, len));
    CheckpointReader reader;
    EXPECT_FALSE(reader.Open(cut).ok()) << "prefix of " << len << " bytes";
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(CkptFormatTest, RejectsFlippedByteAtEveryOffset) {
  const std::string path = TempPath("flip.ktc");
  CheckpointWriter writer;
  writer.Section("data") = "0123456789";
  ASSERT_TRUE(writer.Commit(path).ok());
  const std::string bytes = ReadAll(path);

  const std::string bad = TempPath("flip_bad.ktc");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    WriteAll(bad, corrupt);
    CheckpointReader reader;
    EXPECT_FALSE(reader.Open(bad).ok()) << "flipped byte at offset " << i;
  }
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

TEST(CkptFormatTest, RejectsTrailingBytes) {
  const std::string path = TempPath("trailing.ktc");
  CheckpointWriter writer;
  writer.Section("data") = "payload";
  ASSERT_TRUE(writer.Commit(path).ok());
  WriteAll(path, ReadAll(path) + "junk");
  CheckpointReader reader;
  EXPECT_FALSE(reader.Open(path).ok());
  std::remove(path.c_str());
}

TEST(CkptFormatTest, RejectsUnknownFormatVersion) {
  const std::string path = TempPath("version.ktc");
  CheckpointWriter writer;
  writer.Section("data") = "payload";
  ASSERT_TRUE(writer.Commit(path).ok());
  std::string bytes = ReadAll(path);
  // The version field sits right after the 4-byte magic.
  bytes[4] = 99;
  WriteAll(path, bytes);
  CheckpointReader reader;
  const Status status = reader.Open(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CkptFormatTest, MissingFileIsNotFound) {
  CheckpointReader reader;
  EXPECT_EQ(reader.Open(TempPath("does_not_exist.ktc")).code(),
            StatusCode::kNotFound);
}

// A crash mid-save must never destroy the previous checkpoint: the commit
// protocol writes "<path>.tmp" and renames. Simulate an interruption at
// every byte offset of the new file and verify the old file stays loadable.
TEST(CkptFormatTest, InterruptedCommitLeavesPreviousCheckpointLoadable) {
  const std::string path = TempPath("atomic.ktc");
  CheckpointWriter old_writer;
  old_writer.Section("data") = "old-contents";
  ASSERT_TRUE(old_writer.Commit(path).ok());

  CheckpointWriter new_writer;
  new_writer.Section("data") = "new-contents-which-are-longer";
  const std::string staging = TempPath("atomic_staging.ktc");
  ASSERT_TRUE(new_writer.Commit(staging).ok());
  const std::string new_bytes = ReadAll(staging);

  for (size_t len = 0; len < new_bytes.size(); ++len) {
    // Crash after writing `len` bytes of the tmp file: the tmp file holds a
    // prefix, the destination is untouched.
    WriteAll(path + ".tmp", new_bytes.substr(0, len));
    CheckpointReader reader;
    ASSERT_TRUE(reader.Open(path).ok()) << "interrupted at offset " << len;
    std::string_view view;
    ASSERT_TRUE(reader.Find("data", &view).ok());
    EXPECT_EQ(view, "old-contents");
  }
  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
  std::remove(staging.c_str());
}

// ---------------------------------------------------------------------------
// Training-state round trips
// ---------------------------------------------------------------------------

data::Dataset SmallDataset(uint64_t seed) {
  data::SimulatorConfig config;
  config.num_students = 30;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 10;
  config.max_responses = 20;
  config.seed = seed;
  data::StudentSimulator sim(config);
  return sim.Generate();
}

rckt::RcktConfig SmallRcktConfig(uint64_t seed) {
  rckt::RcktConfig config;
  config.dim = 8;
  config.seed = seed;
  return config;
}

data::Batch SmallPrefixBatch(const data::Dataset& ds) {
  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    if (seq.length() > 8) samples.push_back({&seq, 8});
    if (samples.size() == 8) break;
  }
  return rckt::MakePrefixBatch(samples);
}

TEST(TrainingStateTest, RoundTripsFullTrainingState) {
  data::Dataset ds = SmallDataset(21);
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallRcktConfig(7));
  data::Batch batch = SmallPrefixBatch(ds);
  for (int step = 0; step < 3; ++step) model.TrainStep(batch);

  Rng shuffle(123);
  shuffle.NextU64();
  TrainerProgress progress;
  progress.next_epoch = 4;
  progress.epochs_run = 4;
  progress.best_val_auc = 0.625;
  progress.best_epoch = 2;
  progress.epochs_since_best = 1;
  progress.val_auc_history = {0.5, 0.6, 0.625, 0.61};
  progress.train_loss_history = {1.2, 1.0, 0.9, 0.85};
  std::vector<Tensor> best_state = model.StateClone();

  TrainingState state;
  state.tag = model.name();
  state.module = &model;
  state.optimizer = model.optimizer();
  state.rngs = {{"shuffle", &shuffle}, {"dropout", model.dropout_rng()}};
  state.progress = &progress;
  state.best_state = &best_state;

  const std::string path = TempPath("training_state.ktc");
  ASSERT_TRUE(SaveTrainingState(state, path).ok());

  // Snapshot the saved values, then perturb everything.
  // Tensor copies share storage, so deep-clone the moment snapshots.
  const std::vector<Tensor> saved_params = model.StateClone();
  std::vector<Tensor> saved_m, saved_v;
  for (const Tensor& t : model.optimizer()->moment1()) {
    saved_m.push_back(t.Clone());
  }
  for (const Tensor& t : model.optimizer()->moment2()) {
    saved_v.push_back(t.Clone());
  }
  const int64_t saved_step = model.optimizer()->step_count();
  const Rng::State saved_shuffle = shuffle.GetState();
  const Rng::State saved_dropout = model.dropout_rng()->GetState();
  const TrainerProgress saved_progress = progress;

  for (int step = 0; step < 2; ++step) model.TrainStep(batch);
  shuffle.NextU64();
  progress = TrainerProgress();
  best_state.clear();

  ASSERT_TRUE(LoadTrainingState(state, path).ok());

  EXPECT_TRUE(BitsEqual(model.StateClone(), saved_params));
  EXPECT_TRUE(BitsEqual(model.optimizer()->moment1(), saved_m));
  EXPECT_TRUE(BitsEqual(model.optimizer()->moment2(), saved_v));
  EXPECT_EQ(model.optimizer()->step_count(), saved_step);
  EXPECT_EQ(std::memcmp(shuffle.GetState().s, saved_shuffle.s,
                        sizeof(saved_shuffle.s)),
            0);
  EXPECT_EQ(std::memcmp(model.dropout_rng()->GetState().s, saved_dropout.s,
                        sizeof(saved_dropout.s)),
            0);
  EXPECT_EQ(progress.next_epoch, saved_progress.next_epoch);
  EXPECT_EQ(progress.epochs_run, saved_progress.epochs_run);
  EXPECT_EQ(progress.best_val_auc, saved_progress.best_val_auc);
  EXPECT_EQ(progress.best_epoch, saved_progress.best_epoch);
  EXPECT_EQ(progress.epochs_since_best, saved_progress.epochs_since_best);
  EXPECT_EQ(progress.val_auc_history, saved_progress.val_auc_history);
  EXPECT_EQ(progress.train_loss_history, saved_progress.train_loss_history);
  EXPECT_TRUE(BitsEqual(best_state, saved_params));
  std::remove(path.c_str());
}

TEST(TrainingStateTest, RejectsTagMismatch) {
  Rng rng(3);
  nn::Linear module(4, 3, rng);
  TrainerProgress progress;
  TrainingState state;
  state.tag = "model-a";
  state.module = &module;
  state.progress = &progress;

  const std::string path = TempPath("tag.ktc");
  ASSERT_TRUE(SaveTrainingState(state, path).ok());

  state.tag = "model-b";
  const Status status = LoadTrainingState(state, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("tag"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TrainingStateTest, CorruptFileLeavesStateUntouched) {
  data::Dataset ds = SmallDataset(22);
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallRcktConfig(9));
  data::Batch batch = SmallPrefixBatch(ds);
  model.TrainStep(batch);

  Rng shuffle(5);
  TrainerProgress progress;
  std::vector<Tensor> best_state;
  TrainingState state;
  state.tag = model.name();
  state.module = &model;
  state.optimizer = model.optimizer();
  state.rngs = {{"shuffle", &shuffle}};
  state.progress = &progress;
  state.best_state = &best_state;

  const std::string path = TempPath("corrupt_state.ktc");
  ASSERT_TRUE(SaveTrainingState(state, path).ok());

  // Move on, then try to load a corrupted file: nothing may change.
  model.TrainStep(batch);
  progress.next_epoch = 2;
  const std::vector<Tensor> params_before = model.StateClone();
  std::vector<Tensor> m_before;  // deep clone: Tensor copies share storage
  for (const Tensor& t : model.optimizer()->moment1()) {
    m_before.push_back(t.Clone());
  }
  const Rng::State shuffle_before = shuffle.GetState();

  std::string bytes = ReadAll(path);
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  WriteAll(path, bytes);

  EXPECT_FALSE(LoadTrainingState(state, path).ok());
  EXPECT_TRUE(BitsEqual(model.StateClone(), params_before));
  EXPECT_TRUE(BitsEqual(model.optimizer()->moment1(), m_before));
  EXPECT_EQ(std::memcmp(shuffle.GetState().s, shuffle_before.s,
                        sizeof(shuffle_before.s)),
            0);
  EXPECT_EQ(progress.next_epoch, 2);
  std::remove(path.c_str());
}

TEST(TrainingStateTest, RejectsMissingRngStream) {
  Rng rng(3);
  nn::Linear module(4, 3, rng);
  Rng stream_a(1);
  TrainerProgress progress;
  TrainingState state;
  state.tag = "m";
  state.module = &module;
  state.rngs = {{"a", &stream_a}};
  state.progress = &progress;

  const std::string path = TempPath("missing_rng.ktc");
  ASSERT_TRUE(SaveTrainingState(state, path).ok());

  Rng stream_b(2);
  state.rngs.emplace_back("b", &stream_b);
  const Status status = LoadTrainingState(state, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("'b'"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Kill/resume bit-identity
// ---------------------------------------------------------------------------

struct RcktRunArtifacts {
  rckt::RcktTrainResult result;
  std::vector<Tensor> final_params;
  std::vector<float> influence_scores;
  std::vector<float> explain_influences;
};

RcktRunArtifacts CollectArtifacts(rckt::RCKT& model,
                                  const rckt::RcktTrainResult& result,
                                  const data::Batch& probe) {
  RcktRunArtifacts artifacts;
  artifacts.result = result;
  artifacts.final_params = model.StateClone();
  artifacts.influence_scores = model.ScoreTargets(probe);
  for (const auto& explanation : model.ExplainTargets(probe)) {
    artifacts.explain_influences.insert(artifacts.explain_influences.end(),
                                        explanation.influence.begin(),
                                        explanation.influence.end());
  }
  return artifacts;
}

void ExpectIdenticalRuns(const RcktRunArtifacts& a, const RcktRunArtifacts& b) {
  EXPECT_TRUE(BitsEqual(a.final_params, b.final_params));
  EXPECT_EQ(a.result.train_loss_history, b.result.train_loss_history);
  EXPECT_EQ(a.result.val_auc_history, b.result.val_auc_history);
  EXPECT_EQ(a.result.best_val_auc, b.result.best_val_auc);
  EXPECT_EQ(a.result.best_epoch, b.result.best_epoch);
  EXPECT_EQ(a.result.test.auc, b.result.test.auc);
  EXPECT_EQ(a.result.test.acc, b.result.test.acc);
  EXPECT_EQ(a.influence_scores, b.influence_scores);
  EXPECT_EQ(a.explain_influences, b.explain_influences);
}

// Train k epochs -> kill -> resume must equal an uninterrupted run exactly:
// final parameters, logged losses, AUCs, and influence scores, at
// KT_NUM_THREADS = 1, 2, and 8.
TEST(CkptResumeTest, RcktKillResumeBitIdenticalAcrossThreadCounts) {
  data::Dataset ds = SmallDataset(31);
  Rng fold_rng(5);
  const auto folds =
      data::KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 5,
                            fold_rng);
  data::FoldSplit split = data::MakeFold(ds, folds, 0, 0.2, fold_rng);
  data::Batch probe = SmallPrefixBatch(ds);

  rckt::RcktTrainOptions options;
  options.max_epochs = 4;
  options.patience = 10;
  options.batch_size = 16;

  const int previous_threads = GetNumThreads();
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    const std::string path =
        TempPath("resume_t" + std::to_string(threads) + ".ktc");

    // Uninterrupted reference run.
    rckt::RCKT uninterrupted(ds.num_questions, ds.num_concepts,
                             SmallRcktConfig(13));
    const RcktRunArtifacts reference = CollectArtifacts(
        uninterrupted, TrainAndEvaluateRckt(uninterrupted, split, options),
        probe);

    // "Killed" run: checkpoint every epoch, stop after 2 of 4 epochs. The
    // checkpoint on disk is the epoch-2 boundary state.
    {
      rckt::RCKT killed(ds.num_questions, ds.num_concepts,
                        SmallRcktConfig(13));
      rckt::RcktTrainOptions kill_options = options;
      kill_options.max_epochs = 2;
      kill_options.checkpoint_every = 1;
      kill_options.checkpoint_path = path;
      TrainAndEvaluateRckt(killed, split, kill_options);
    }

    // Resumed run. A different init seed proves every relevant bit comes
    // from the checkpoint, not from matching construction.
    rckt::RCKT resumed(ds.num_questions, ds.num_concepts,
                       SmallRcktConfig(99));
    rckt::RcktTrainOptions resume_options = options;
    resume_options.checkpoint_every = 1;
    resume_options.checkpoint_path = path;
    resume_options.resume_path = path;
    const RcktRunArtifacts resumed_artifacts = CollectArtifacts(
        resumed, TrainAndEvaluateRckt(resumed, split, resume_options), probe);

    ExpectIdenticalRuns(reference, resumed_artifacts);
    EXPECT_EQ(resumed_artifacts.result.epochs_run, 4);
    std::remove(path.c_str());
  }
  SetNumThreads(previous_threads);
}

TEST(CkptResumeTest, DktTrainerKillResumeBitIdentical) {
  data::Dataset ds = SmallDataset(41);
  Rng fold_rng(5);
  const auto folds =
      data::KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 5,
                            fold_rng);
  data::FoldSplit split = data::MakeFold(ds, folds, 0, 0.2, fold_rng);

  models::NeuralConfig nc;
  nc.dim = 8;
  eval::TrainOptions options;
  options.max_epochs = 4;
  options.patience = 10;
  options.batch_size = 16;

  models::DKT uninterrupted(ds.num_questions, ds.num_concepts, nc);
  const eval::TrainResult reference =
      eval::TrainAndEvaluate(uninterrupted, split, options);
  const std::vector<Tensor> reference_params = uninterrupted.StateClone();

  const std::string path = TempPath("dkt_resume.ktc");
  {
    models::DKT killed(ds.num_questions, ds.num_concepts, nc);
    eval::TrainOptions kill_options = options;
    kill_options.max_epochs = 2;
    kill_options.checkpoint_every = 1;
    kill_options.checkpoint_path = path;
    eval::TrainAndEvaluate(killed, split, kill_options);
  }

  models::NeuralConfig other_init = nc;
  other_init.seed = 77;
  models::DKT resumed(ds.num_questions, ds.num_concepts, other_init);
  eval::TrainOptions resume_options = options;
  resume_options.checkpoint_every = 1;
  resume_options.checkpoint_path = path;
  resume_options.resume_path = path;
  const eval::TrainResult resumed_result =
      eval::TrainAndEvaluate(resumed, split, resume_options);

  EXPECT_TRUE(BitsEqual(resumed.StateClone(), reference_params));
  EXPECT_EQ(resumed_result.train_loss_history, reference.train_loss_history);
  EXPECT_EQ(resumed_result.val_auc_history, reference.val_auc_history);
  EXPECT_EQ(resumed_result.best_val_auc, reference.best_val_auc);
  EXPECT_EQ(resumed_result.test.auc, reference.test.auc);
  EXPECT_EQ(resumed_result.test.acc, reference.test.acc);
  EXPECT_EQ(resumed_result.epochs_run, 4);
  std::remove(path.c_str());
}

// A killed 5-fold (here 2-fold) run restarts at the interrupted fold:
// completed folds fast-resume from their final checkpoint without
// retraining, and the cross-validation result matches an uninterrupted run
// exactly.
TEST(CkptResumeTest, CrossValidationResumesInterruptedFold) {
  data::Dataset ds = SmallDataset(51);
  rckt::RcktTrainOptions options;
  options.max_epochs = 3;
  options.patience = 10;
  options.batch_size = 16;

  const rckt::RcktFactory factory = [&](const data::Dataset&) {
    return std::make_unique<rckt::RCKT>(ds.num_questions, ds.num_concepts,
                                        SmallRcktConfig(13));
  };

  const eval::CrossValidationResult reference = rckt::RunRcktCrossValidation(
      ds, 2, factory, options, /*seed=*/11, /*validation_fraction=*/0.2);

  // "Killed after fold 0": only the first fold runs, checkpointing as it
  // goes, so <path>.fold0 holds that fold's final epoch boundary.
  const std::string path = TempPath("cv.ktc");
  rckt::RcktTrainOptions ckpt_options = options;
  ckpt_options.checkpoint_every = 1;
  ckpt_options.checkpoint_path = path;
  rckt::RunRcktCrossValidation(ds, 2, factory, ckpt_options, 11, 0.2,
                               /*folds_to_run=*/1);
  ASSERT_TRUE(FileExists(path + ".fold0"));
  ASSERT_FALSE(FileExists(path + ".fold1"));

  // Restarted run resumes every fold from its own checkpoint; fold 0 skips
  // straight to the final test evaluation, fold 1 trains from scratch.
  rckt::RcktTrainOptions resume_options = ckpt_options;
  resume_options.resume_path = path;
  const eval::CrossValidationResult restarted = rckt::RunRcktCrossValidation(
      ds, 2, factory, resume_options, 11, 0.2);

  ASSERT_EQ(restarted.fold_auc.size(), reference.fold_auc.size());
  for (size_t i = 0; i < reference.fold_auc.size(); ++i) {
    EXPECT_EQ(restarted.fold_auc[i], reference.fold_auc[i]) << "fold " << i;
    EXPECT_EQ(restarted.fold_acc[i], reference.fold_acc[i]) << "fold " << i;
  }
  EXPECT_EQ(restarted.auc_mean, reference.auc_mean);
  std::remove((path + ".fold0").c_str());
  std::remove((path + ".fold1").c_str());
}

}  // namespace
}  // namespace ckpt
}  // namespace kt
