// Regression tests for the serve transport hardening. Each test pins a bug
// the pre-reactor transport actually had:
//
//   * bare ::write to a disconnected peer -> process-fatal SIGPIPE
//     (deterministic on AF_UNIX: the first write to a closed peer raises
//     the signal; TCP gets there one RST later),
//   * EINTR from a profiler/timer signal treated as disconnect (::read) or
//     as "listener closed, shut down" (::accept),
//   * no cap on a request line, so a client streaming bytes with no '\n'
//     grew a server-side buffer without bound,
//   * finished connection threads joined only when the NEXT connection
//     arrived, so an idle server accumulated dead thread handles.
#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/simulator.h"
#include "obs/obs.h"
#include "rckt/rckt_model.h"
#include "serve/engine.h"
#include "serve/framing.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace kt {
namespace serve {
namespace {

data::Dataset TinyDataset() {
  data::SimulatorConfig config;
  config.num_students = 12;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 10;
  config.max_responses = 18;
  config.seed = 9;
  data::StudentSimulator sim(config);
  return sim.Generate();
}

rckt::RcktConfig SmallConfig() {
  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 16;
  config.num_layers = 1;
  config.dropout = 0.0f;
  config.seed = 4;
  return config;
}

int PickFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// A live TCP server over a tiny model, torn down via the shutdown op.
class TransportServer {
 public:
  explicit TransportServer(size_t max_line_bytes = kDefaultMaxLineBytes,
                           int shards = 1)
      : ds_(TinyDataset()),
        model_(ds_.num_questions, ds_.num_concepts, SmallConfig()) {
    port_ = PickFreePort();
    ServerOptions so;
    so.port = port_;
    so.shards = shards;
    so.max_line_bytes = max_line_bytes;
    so.engine.num_questions = ds_.num_questions;
    so.engine.num_concepts = ds_.num_concepts;
    thread_ = std::thread([this, so] { RunServer(model_, so); });
    // The listener comes up asynchronously; poll until it accepts.
    for (int i = 0; i < 200 && !Ping(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  ~TransportServer() {
    Shutdown();
    if (thread_.joinable()) thread_.join();
  }

  int port() const { return port_; }
  // The RunServer (reactor event-loop) thread, for targeted signal
  // delivery.
  pthread_t accept_thread() { return thread_.native_handle(); }

  bool Ping() {
    LineClient client;
    std::string response, error;
    return client.Connect(port_, &error) &&
           client.RoundTrip(PredictLine("ping", 0, {0}), &response, &error);
  }

  void Shutdown() {
    LineClient client;
    std::string response, error;
    if (client.Connect(port_, &error))
      client.RoundTrip("{\"op\":\"shutdown\"}", &response, &error);
  }

 private:
  data::Dataset ds_;
  rckt::RCKT model_;
  int port_ = 0;
  std::thread thread_;
};

// ---- SIGPIPE ----

TEST(ServeTransportTest, SendToClosedPeerReturnsFalseInsteadOfSigpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  // With a bare ::write (the old transport) the FIRST write to the closed
  // peer delivers SIGPIPE and the default disposition kills the process —
  // this test only returns with MSG_NOSIGNAL in place.
  EXPECT_FALSE(SendAllNoSignal(fds[0], "{\"op\":\"stats\"}\n"));
  EXPECT_FALSE(SendAllNoSignal(fds[0], "again\n"));
  ::close(fds[0]);
}

TEST(ServeTransportTest, SurvivesClientThatDisconnectsMidReply) {
  TransportServer server;
  for (int round = 0; round < 3; ++round) {
    const int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    // Pipeline a burst the server will still be answering when we vanish,
    // then close with pending unread data -> immediate RST, so the
    // server's in-flight response writes hit a dead socket.
    std::string burst;
    for (int i = 0; i < 64; ++i)
      burst += PredictLine("gone", i % 25, {0}) + "\n";
    ASSERT_TRUE(SendAllNoSignal(fd, burst));
    ::close(fd);
  }
  // The server must still be alive and serving.
  EXPECT_TRUE(server.Ping());
}

// ---- EINTR ----

struct SigusrGuard {
  SigusrGuard() {
    struct sigaction sa{};
    sa.sa_handler = [](int) {};
    sa.sa_flags = 0;  // no SA_RESTART: syscalls must surface EINTR
    sigaction(SIGUSR1, &sa, &old_);
  }
  ~SigusrGuard() { sigaction(SIGUSR1, &old_, nullptr); }
  struct sigaction old_{};
};

TEST(ServeTransportTest, ReadRetriesInterruptedSyscall) {
  SigusrGuard guard;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread reader([&] {
    char buf[64];
    // Blocks until data arrives; the signal interrupts the syscall first.
    const ssize_t n = ReadRetryEintr(fds[0], buf, sizeof(buf));
    EXPECT_EQ(n, 6) << "EINTR must be retried, not treated as disconnect";
    EXPECT_EQ(std::string(buf, 6), "hello\n");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pthread_kill(reader.native_handle(), SIGUSR1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(SendAllNoSignal(fds[1], "hello\n"));
  reader.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeTransportTest, AcceptLoopSurvivesSignalInterruption) {
  SigusrGuard guard;
  TransportServer server;
  ASSERT_TRUE(server.Ping());
  // Interrupt the accept loop while it is blocked waiting for connections.
  // The old transport treated any accept() failure as "listener closed by
  // a shutdown op" and exited the serve loop.
  for (int i = 0; i < 5; ++i) {
    pthread_kill(server.accept_thread(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_TRUE(server.Ping()) << "server exited after EINTR in accept loop";
}

// ---- request line cap ----

TEST(ServeTransportTest, OversizedLineIsRejectedAndConnectionClosed) {
  TransportServer server(/*max_line_bytes=*/1024);
  const int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  // 8 KiB with no newline: with no cap the old transport buffered forever
  // and never answered; now it must answer ok:false and close.
  const std::string flood(8192, 'x');
  ASSERT_TRUE(SendAllNoSignal(fd, flood));
  std::string got;
  char buf[4096];
  while (true) {
    const ssize_t n = ReadRetryEintr(fd, buf, sizeof(buf));
    if (n <= 0) break;  // server closed after the error line
    got.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(got.find("\"ok\":false"), std::string::npos) << got;
  EXPECT_NE(got.find("exceeds"), std::string::npos) << got;
  // A fresh, well-behaved connection still works.
  EXPECT_TRUE(server.Ping());
}

TEST(LineFramerTest, SplitsLinesAcrossChunksAndCompacts) {
  LineFramer framer(64);
  std::string line;
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  framer.Append("ab", 2);
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  framer.Append("c\nde\n", 5);
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "abc");
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "de");
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  EXPECT_EQ(framer.buffered(), 0u);
  // Many lines through a small framer: consumed prefixes must not pile up.
  for (int i = 0; i < 10000; ++i) {
    framer.Append("0123456789\n", 11);
    ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  }
  EXPECT_LE(framer.buffered(), 64u);
}

TEST(LineFramerTest, OverflowIsStickyUntilResync) {
  LineFramer framer(8);
  std::string line;
  framer.Append("0123456789", 10);  // over the cap, no newline yet
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kOverflow);
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kOverflow);
  framer.Resync();
  // Still discarding: the oversized line has not ended yet.
  framer.Append("more-of-the-flood", 17);
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  framer.Append("end\nok\n", 7);
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "ok");
}

TEST(LineFramerTest, CompleteLineLongerThanCapIsOverflow) {
  LineFramer framer(4);
  std::string line;
  framer.Append("toolong\nok\n", 11);
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kOverflow);
  framer.Resync();  // skips through the oversized line's newline
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "ok");
}

// ---- timely reaping ----

TEST(ServeTransportTest, FinishedConnectionsAreReapedWithoutNewArrivals) {
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::Counter* reaped = obs::Counter::Get("serve.connections_reaped");
  const int64_t before = reaped->Value();
  {
    TransportServer server;
    for (int i = 0; i < 3; ++i) {
      LineClient client;
      std::string response, error;
      ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
      ASSERT_TRUE(client.RoundTrip(PredictLine("r" + std::to_string(i), 1,
                                               {0}),
                                   &response, &error))
          << error;
    }  // each client disconnects here; no further connections arrive
    bool ok = false;
    for (int i = 0; i < 100; ++i) {
      if (reaped->Value() - before >= 3) {
        ok = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_TRUE(ok)
        << "idle server never joined finished connection handlers";
  }
  obs::SetEnabled(was_enabled);
}

}  // namespace
}  // namespace serve
}  // namespace kt
