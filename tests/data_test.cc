#include <algorithm>
#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "data/batch.h"
#include "data/dataset.h"
#include "data/presets.h"
#include "data/scenarios.h"
#include "data/simulator.h"

namespace kt {
namespace data {
namespace {

SimulatorConfig TinyConfig() {
  SimulatorConfig config;
  config.num_students = 30;
  config.num_questions = 40;
  config.num_concepts = 6;
  config.min_responses = 10;
  config.max_responses = 30;
  config.seed = 5;
  return config;
}

TEST(DatasetTest, Statistics) {
  Dataset ds;
  ds.num_questions = 3;
  ds.num_concepts = 2;
  ResponseSequence seq;
  seq.interactions = {{0, 1, {0}}, {1, 0, {0, 1}}, {2, 1, {1}}};
  ds.sequences.push_back(seq);
  EXPECT_EQ(ds.TotalResponses(), 3);
  EXPECT_NEAR(ds.CorrectRate(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(ds.ConceptsPerQuestion(), 4.0 / 3.0, 1e-9);
}

TEST(WindowingTest, SplitsAndDropsShortTails) {
  Dataset raw;
  raw.num_questions = 10;
  raw.num_concepts = 2;
  ResponseSequence seq;
  for (int i = 0; i < 23; ++i) seq.interactions.push_back({i % 10, 1, {0}});
  raw.sequences.push_back(seq);

  Dataset windows = SplitIntoWindows(raw, 10, 5);
  // 23 -> windows of 10, 10, 3; the 3-tail is dropped.
  ASSERT_EQ(windows.sequences.size(), 2u);
  EXPECT_EQ(windows.sequences[0].length(), 10);
  EXPECT_EQ(windows.sequences[1].length(), 10);
}

TEST(WindowingTest, KeepsShortButValidTails) {
  Dataset raw;
  raw.num_questions = 10;
  raw.num_concepts = 1;
  ResponseSequence seq;
  for (int i = 0; i < 17; ++i) seq.interactions.push_back({i % 10, 0, {0}});
  raw.sequences.push_back(seq);
  Dataset windows = SplitIntoWindows(raw, 10, 5);
  ASSERT_EQ(windows.sequences.size(), 2u);
  EXPECT_EQ(windows.sequences[1].length(), 7);
}

TEST(KFoldTest, BalancedAndComplete) {
  Rng rng(3);
  const auto folds = KFoldAssignment(103, 5, rng);
  ASSERT_EQ(folds.size(), 103u);
  std::vector<int> counts(5, 0);
  for (int f : folds) {
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 5);
    counts[static_cast<size_t>(f)]++;
  }
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST(MakeFoldTest, PartitionsWithoutOverlap) {
  StudentSimulator sim(TinyConfig());
  Dataset ds = sim.Generate();
  Rng rng(9);
  const auto folds =
      KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 5, rng);
  FoldSplit split = MakeFold(ds, folds, 2, 0.1, rng);
  EXPECT_EQ(split.train.sequences.size() + split.validation.sequences.size() +
                split.test.sequences.size(),
            ds.sequences.size());
  EXPECT_GT(split.test.sequences.size(), 0u);
  EXPECT_GT(split.validation.sequences.size(), 0u);
  // Metadata propagated.
  EXPECT_EQ(split.train.num_questions, ds.num_questions);
}

TEST(SimulatorTest, DeterministicForSeed) {
  StudentSimulator a(TinyConfig());
  StudentSimulator b(TinyConfig());
  Dataset da = a.Generate();
  Dataset db = b.Generate();
  ASSERT_EQ(da.sequences.size(), db.sequences.size());
  for (size_t s = 0; s < da.sequences.size(); ++s) {
    ASSERT_EQ(da.sequences[s].length(), db.sequences[s].length());
    for (int64_t t = 0; t < da.sequences[s].length(); ++t) {
      const auto& ia = da.sequences[s].interactions[static_cast<size_t>(t)];
      const auto& ib = db.sequences[s].interactions[static_cast<size_t>(t)];
      EXPECT_EQ(ia.question, ib.question);
      EXPECT_EQ(ia.response, ib.response);
    }
  }
}

TEST(SimulatorTest, QuestionsHaveConceptsInRange) {
  StudentSimulator sim(TinyConfig());
  const auto& qc = sim.question_concepts();
  ASSERT_EQ(qc.size(), 40u);
  for (const auto& concepts : qc) {
    ASSERT_GE(concepts.size(), 1u);
    for (int64_t k : concepts) {
      EXPECT_GE(k, 0);
      EXPECT_LT(k, 6);
    }
  }
}

TEST(SimulatorTest, CalibrationHitsTargetRate) {
  SimulatorConfig config = TinyConfig();
  config.num_students = 120;
  config.target_correct_rate = 0.7;
  StudentSimulator sim(config);
  Dataset ds = sim.Generate();
  EXPECT_NEAR(ds.CorrectRate(), 0.7, 0.06);

  config.target_correct_rate = 0.55;
  config.seed = 6;
  StudentSimulator sim2(config);
  EXPECT_NEAR(sim2.Generate().CorrectRate(), 0.55, 0.06);
}

TEST(SimulatorTest, LearningImprovesProficiency) {
  StudentSimulator sim(TinyConfig());
  SimulationTrace trace;
  sim.GenerateStudent(40, 1, &trace);
  ASSERT_EQ(trace.proficiency.size(), 40u);
  // Mean proficiency at the end exceeds the start (learning dominates
  // forgetting when practicing).
  auto mean = [](const std::vector<double>& v) {
    double total = 0.0;
    for (double x : v) total += x;
    return total / static_cast<double>(v.size());
  };
  EXPECT_GT(mean(trace.proficiency.back()), mean(trace.proficiency.front()));
}

TEST(SimulatorTest, TraceMatchesSequenceLength) {
  StudentSimulator sim(TinyConfig());
  SimulationTrace trace;
  ResponseSequence seq = sim.GenerateStudent(15, 2, &trace);
  EXPECT_EQ(seq.length(), 15);
  EXPECT_EQ(trace.proficiency.size(), 15u);
}

TEST(PresetTest, AllPresetsMatchTable2Structure) {
  // Table II structure: concepts/question and %correct bands.
  struct Expectation {
    const char* name;
    double concepts_per_question;
    double correct_rate;
  };
  const Expectation expectations[] = {
      {"assist09", 1.22, 0.63},
      {"assist12", 1.0, 0.70},
      {"slepemapy", 1.0, 0.78},
      {"eedi", 1.0, 0.64},
  };
  const auto presets = data::AllPresets(/*scale=*/0.25);
  ASSERT_EQ(presets.size(), 4u);
  for (size_t i = 0; i < presets.size(); ++i) {
    StudentSimulator sim(presets[i]);
    Dataset ds = sim.Generate();
    EXPECT_EQ(ds.name, expectations[i].name);
    EXPECT_NEAR(ds.ConceptsPerQuestion(), expectations[i].concepts_per_question,
                0.08)
        << ds.name;
    EXPECT_NEAR(ds.CorrectRate(), expectations[i].correct_rate, 0.06)
        << ds.name;
  }
}

TEST(PresetTest, PresetByName) {
  const auto eedi = PresetByName("eedi");
  ASSERT_TRUE(eedi.ok());
  EXPECT_EQ(eedi.value().name, "eedi");
}

TEST(PresetTest, UnknownNameListsTheRegistry) {
  // Unknown names must return (not abort), and the message must carry the
  // full valid-name list so CLI front ends can surface it.
  const auto missing = PresetByName("nope");
  ASSERT_FALSE(missing.ok());
  const std::string& message = missing.status().message();
  EXPECT_NE(message.find("unknown preset"), std::string::npos) << message;
  for (const std::string& name : PresetNames()) {
    EXPECT_NE(message.find(name), std::string::npos) << message;
  }
}

TEST(ScenarioTest, ScenarioByName) {
  const auto zipf = ScenarioByName("zipf");
  ASSERT_TRUE(zipf.ok());
  EXPECT_EQ(zipf.value().name, "zipf");
  EXPECT_GT(zipf.value().zipf_exponent, 0.0);
  // The base training log resolves too.
  ASSERT_TRUE(ScenarioByName("scenario_base").ok());
}

TEST(ScenarioTest, UnknownNameListsTheRegistry) {
  const auto missing = ScenarioByName("warp_core");
  ASSERT_FALSE(missing.ok());
  const std::string& message = missing.status().message();
  EXPECT_NE(message.find("unknown scenario"), std::string::npos) << message;
  for (const std::string& name : ScenarioNames()) {
    EXPECT_NE(message.find(name), std::string::npos) << message;
  }
}

TEST(ScenarioTest, AllScenariosDeterministicForSeed) {
  // Same seed -> bit-identical sequences, for every scenario: two
  // independently constructed simulators (separate calibration runs) must
  // agree on every question, concept bag, and response.
  for (const SimulatorConfig& config : AllScenarios(/*scale=*/0.05)) {
    StudentSimulator a(config);
    StudentSimulator b(config);
    const Dataset da = a.Generate();
    const Dataset db = b.Generate();
    ASSERT_EQ(da.sequences.size(), db.sequences.size()) << config.name;
    for (size_t s = 0; s < da.sequences.size(); ++s) {
      const auto& sa = da.sequences[s];
      const auto& sb = db.sequences[s];
      ASSERT_EQ(sa.length(), sb.length()) << config.name;
      for (int64_t t = 0; t < sa.length(); ++t) {
        const auto& ia = sa.interactions[static_cast<size_t>(t)];
        const auto& ib = sb.interactions[static_cast<size_t>(t)];
        ASSERT_EQ(ia.question, ib.question) << config.name;
        ASSERT_EQ(ia.response, ib.response) << config.name;
        ASSERT_EQ(ia.concepts, ib.concepts) << config.name;
      }
    }
  }
}

TEST(ScenarioTest, StreamingMatchesMaterializedGeneration) {
  // GenerateStudentAuto(s) is the streaming form kt_loadgen --mode
  // scenario uses to reach millions of students without materializing a
  // Dataset; it must be bit-identical to Generate()'s s-th sequence.
  for (const SimulatorConfig& config : AllScenarios(/*scale=*/0.05)) {
    StudentSimulator sim(config);
    const Dataset ds = sim.Generate();
    for (size_t s = 0; s < ds.sequences.size(); ++s) {
      const ResponseSequence seq = sim.GenerateStudentAuto(s);
      const auto& want = ds.sequences[s];
      ASSERT_EQ(seq.length(), want.length()) << config.name;
      for (int64_t t = 0; t < seq.length(); ++t) {
        const auto& a = seq.interactions[static_cast<size_t>(t)];
        const auto& b = want.interactions[static_cast<size_t>(t)];
        ASSERT_EQ(a.question, b.question) << config.name;
        ASSERT_EQ(a.response, b.response) << config.name;
        ASSERT_EQ(a.concepts, b.concepts) << config.name;
      }
    }
  }
}

TEST(ScenarioTest, CalibrationHitsTargetRateForEveryScenario) {
  // CalibrateOffset probes the FULL generative model — bursts, gaps, and
  // drift included — so every scenario must land near its target rate,
  // not just the plain presets.
  for (const SimulatorConfig& config : AllScenarios(/*scale=*/0.25)) {
    StudentSimulator sim(config);
    const Dataset ds = sim.Generate();
    EXPECT_NEAR(ds.CorrectRate(), config.target_correct_rate, 0.06)
        << config.name;
  }
}

TEST(ScenarioTest, ForgettingScenarioShowsProficiencyDecay) {
  const SimulatorConfig config = ForgettingScenario(/*scale=*/0.05);
  SimulatorConfig no_gaps = config;
  no_gaps.gap_prob = 0.0;
  StudentSimulator with_gaps_sim(config);
  StudentSimulator no_gaps_sim(no_gaps);

  auto mean = [](const std::vector<double>& v) {
    double total = 0.0;
    for (double x : v) total += x;
    return total / static_cast<double>(v.size());
  };
  // A spaced-practice gap applies gap_steps decays at once, so somewhere
  // in a long trace the mean proficiency must take a visible one-step
  // drop; without gaps the same student only ever drifts smoothly.
  double max_drop_with_gaps = 0.0, max_drop_without = 0.0;
  double final_with_gaps = 0.0, final_without = 0.0;
  const int kStudents = 8;
  for (int s = 0; s < kStudents; ++s) {
    SimulationTrace gap_trace, smooth_trace;
    with_gaps_sim.GenerateStudent(100, static_cast<uint64_t>(s), &gap_trace);
    no_gaps_sim.GenerateStudent(100, static_cast<uint64_t>(s),
                                &smooth_trace);
    for (size_t t = 1; t < gap_trace.proficiency.size(); ++t) {
      max_drop_with_gaps =
          std::max(max_drop_with_gaps, mean(gap_trace.proficiency[t - 1]) -
                                           mean(gap_trace.proficiency[t]));
    }
    for (size_t t = 1; t < smooth_trace.proficiency.size(); ++t) {
      max_drop_without =
          std::max(max_drop_without,
                   mean(smooth_trace.proficiency[t - 1]) -
                       mean(smooth_trace.proficiency[t]));
    }
    final_with_gaps += mean(gap_trace.proficiency.back());
    final_without += mean(smooth_trace.proficiency.back());
  }
  EXPECT_GT(max_drop_with_gaps, 0.08);
  EXPECT_GT(max_drop_with_gaps, 4.0 * max_drop_without);
  // Decay costs accumulated mastery: students end measurably lower.
  EXPECT_LT(final_with_gaps / kStudents, final_without / kStudents - 0.05);
}

TEST(ScenarioTest, ZipfScenarioHasHeavierQuestionTail) {
  const SimulatorConfig zipf = ZipfScenario(/*scale=*/0.25);
  SimulatorConfig uniform = zipf;
  uniform.zipf_exponent = 0.0;

  auto top_decile_share = [](const Dataset& ds) {
    std::vector<int64_t> freq(static_cast<size_t>(ds.num_questions), 0);
    int64_t total = 0;
    for (const auto& seq : ds.sequences) {
      for (const auto& it : seq.interactions) {
        ++freq[static_cast<size_t>(it.question)];
        ++total;
      }
    }
    std::sort(freq.begin(), freq.end(), std::greater<int64_t>());
    int64_t top = 0;
    const size_t decile = freq.size() / 10;
    for (size_t i = 0; i < decile; ++i) top += freq[i];
    return static_cast<double>(top) / static_cast<double>(total);
  };
  const double zipf_share = top_decile_share(StudentSimulator(zipf).Generate());
  const double uniform_share =
      top_decile_share(StudentSimulator(uniform).Generate());
  // s=1.2 concentrates a strong majority of traffic on the top 10% of
  // questions; uniform selection spreads it near-proportionally.
  EXPECT_GT(zipf_share, uniform_share + 0.15);
  EXPECT_GT(zipf_share, 0.4);
}

TEST(BatchTest, PadsAndMasks) {
  ResponseSequence a;
  a.interactions = {{1, 1, {0}}, {2, 0, {1}}};
  ResponseSequence b;
  b.interactions = {{3, 1, {0}}, {4, 1, {0}}, {5, 0, {1}}};
  Batch batch = MakeBatch({&a, &b});
  EXPECT_EQ(batch.batch_size, 2);
  EXPECT_EQ(batch.max_len, 3);
  EXPECT_EQ(batch.questions[batch.FlatIndex(0, 1)], 2);
  EXPECT_EQ(batch.questions[batch.FlatIndex(0, 2)], 0);  // padding
  EXPECT_FLOAT_EQ(batch.valid.flat(batch.FlatIndex(0, 2)), 0.0f);
  EXPECT_FLOAT_EQ(batch.valid.flat(batch.FlatIndex(1, 2)), 1.0f);
  EXPECT_FLOAT_EQ(batch.targets.flat(batch.FlatIndex(1, 0)), 1.0f);
  EXPECT_EQ(batch.lengths[0], 2);
}

TEST(BatchTest, PadToRejectsTooLong) {
  ResponseSequence a;
  a.interactions = {{1, 1, {0}}, {2, 0, {1}}, {3, 1, {0}}};
  EXPECT_DEATH(MakeBatch({&a}, /*pad_to=*/2), "KT_CHECK");
  Batch padded = MakeBatch({&a}, /*pad_to=*/5);
  EXPECT_EQ(padded.max_len, 5);
}

TEST(BatchIteratorTest, CoversAllSequencesOncePerEpoch) {
  StudentSimulator sim(TinyConfig());
  Dataset ds = sim.Generate();
  Rng rng(21);
  BatchIterator it(ds, 7, rng, /*shuffle=*/true);
  Batch batch;
  int64_t total = 0;
  int64_t batches = 0;
  while (it.Next(&batch)) {
    total += batch.batch_size;
    ++batches;
  }
  EXPECT_EQ(total, static_cast<int64_t>(ds.sequences.size()));
  EXPECT_EQ(batches, it.NumBatches());
  // Reset starts a fresh epoch.
  it.Reset();
  EXPECT_TRUE(it.Next(&batch));
}

}  // namespace
}  // namespace data
}  // namespace kt
