// Tests for the kt::serve online inference subsystem.
//
// The load-bearing contract: incremental per-step serving is BIT-IDENTICAL
// to the offline full-sequence forward — for every encoder, at every thread
// count, through eviction/replay, and through micro-batch coalescing.
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "data/simulator.h"
#include "nn/gru.h"
#include "nn/lstm.h"
#include "nn/serialize.h"
#include "rckt/encoders.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/session.h"

namespace kt {
namespace serve {
namespace {

uint32_t Bits(float f) {
  uint32_t u = 0;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

data::Dataset TinyDataset() {
  data::SimulatorConfig config;
  config.num_students = 12;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 10;
  config.max_responses = 18;
  config.seed = 9;
  data::StudentSimulator sim(config);
  return sim.Generate();
}

rckt::RcktConfig SmallConfig(rckt::EncoderKind kind) {
  rckt::RcktConfig config;
  config.encoder = kind;
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.seed = 4;
  return config;
}

// ---- JSON wire format ----

TEST(ServeJsonTest, ParsesScalarsArraysAndEscapes) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"op":"predict","n":-3,"p":0.25,"ok":true,"x":null,)"
      R"("tags":[1,2,3],"s":"a\"b\nA"})",
      &v, &error))
      << error;
  EXPECT_EQ(v.GetString("op", ""), "predict");
  EXPECT_EQ(v.GetInt("n", 0), -3);
  EXPECT_DOUBLE_EQ(v.GetNumber("p", 0.0), 0.25);
  EXPECT_TRUE(v.GetBool("ok", false));
  ASSERT_NE(v.Find("x"), nullptr);
  EXPECT_TRUE(v.Find("x")->IsNull());
  ASSERT_NE(v.Find("tags"), nullptr);
  ASSERT_EQ(v.Find("tags")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("tags")->array[1].number, 2.0);
  EXPECT_EQ(v.GetString("s", ""), "a\"b\nA");
}

TEST(ServeJsonTest, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\":", &v, &error));
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &v, &error));
  EXPECT_FALSE(ParseJson("{'a':1}", &v, &error));
  EXPECT_FALSE(ParseJson("", &v, &error));
  // Depth bound: deeply nested arrays must error out, not overflow.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep, &v, &error));
}

TEST(ServeJsonTest, GetIntRejectsOutOfRangeNumbers) {
  // Doubles outside int64 range (or NaN via division) must fall back
  // instead of hitting an undefined double->int64 cast.
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"huge":1e300,"neg":-1e300,"edge":9.3e18,"ok":42,"frac":2.75})", &v,
      &error))
      << error;
  EXPECT_EQ(v.GetInt("huge", -7), -7);
  EXPECT_EQ(v.GetInt("neg", -7), -7);
  EXPECT_EQ(v.GetInt("edge", -7), -7);  // just past INT64_MAX
  EXPECT_EQ(v.GetInt("ok", -7), 42);
  EXPECT_EQ(v.GetInt("frac", -7), 2);  // fractional values truncate
  int64_t out = 0;
  EXPECT_FALSE(v.Find("huge")->ToInt(&out));
  EXPECT_TRUE(v.Find("ok")->ToInt(&out));
  EXPECT_EQ(out, 42);
}

TEST(ServeJsonTest, WriterRoundTripsFloatBits) {
  // %.9g must reproduce the exact float through parse.
  const float values[] = {0.1f, 1.0f / 3.0f, 1e-30f, 123456.78f, 0.0f};
  for (float f : values) {
    JsonWriter w;
    w.BeginObject();
    w.Key("p").Float(f);
    w.EndObject();
    JsonValue v;
    std::string error;
    ASSERT_TRUE(ParseJson(w.str(), &v, &error)) << error;
    EXPECT_EQ(Bits(static_cast<float>(v.GetNumber("p", -1.0))), Bits(f))
        << "float " << f << " did not round-trip through " << w.str();
  }
}

TEST(ServeJsonTest, WriterPlacesCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").BeginArray();
  w.Int(2);
  w.String("x");
  w.EndArray();
  w.Key("c").Bool(false);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,"x"],"c":false})");
}

// ---- Request parsing ----

TEST(ServeProtocolTest, ParsesPredictAndUpdate) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"op":"update","student":"s1","question":7,"response":1,)"
      R"("concepts":[2,5]})",
      &v, &error));
  ServeRequest request;
  ASSERT_TRUE(ParseServeRequest(v, &request, &error)) << error;
  EXPECT_EQ(request.op, Op::kUpdate);
  EXPECT_EQ(request.student, "s1");
  EXPECT_EQ(request.question, 7);
  EXPECT_EQ(request.response, 1);
  ASSERT_TRUE(request.has_concepts);
  EXPECT_EQ(request.concepts, (std::vector<int64_t>{2, 5}));
}

TEST(ServeProtocolTest, RejectsBadRequests) {
  std::string error;
  JsonValue v;
  ServeRequest request;
  ASSERT_TRUE(ParseJson(R"({"op":"fly","student":"s"})", &v, &error));
  EXPECT_FALSE(ParseServeRequest(v, &request, &error));
  // update without a response field.
  ASSERT_TRUE(
      ParseJson(R"({"op":"update","student":"s","question":1})", &v, &error));
  EXPECT_FALSE(ParseServeRequest(v, &request, &error));
  // Numbers beyond int64 range must parse-fail (response) or degrade to
  // the rejected fallback (question, concepts) — never cast undefined.
  ASSERT_TRUE(ParseJson(
      R"({"op":"update","student":"s","question":1,"response":1e300})", &v,
      &error));
  EXPECT_FALSE(ParseServeRequest(v, &request, &error));
  ASSERT_TRUE(ParseJson(
      R"({"op":"predict","student":"s","question":1e300})", &v, &error));
  ASSERT_TRUE(ParseServeRequest(v, &request, &error)) << error;
  EXPECT_EQ(request.question, -1);  // fallback -> engine rejects the id
  ASSERT_TRUE(ParseJson(
      R"({"op":"predict","student":"s","question":1,"concepts":[1e300]})", &v,
      &error));
  EXPECT_FALSE(ParseServeRequest(v, &request, &error));
}

TEST(ServeProtocolTest, ParsesAndRejectsRecourseFields) {
  std::string error;
  JsonValue v;
  ServeRequest request;
  // Absent fields keep their defaults.
  ASSERT_TRUE(ParseJson(
      R"({"op":"recourse","student":"s","question":3})", &v, &error));
  ASSERT_TRUE(ParseServeRequest(v, &request, &error)) << error;
  EXPECT_EQ(request.op, Op::kRecourse);
  EXPECT_EQ(request.k, 2);
  EXPECT_EQ(request.top, 3);
  EXPECT_EQ(request.target_p, -1.0);
  EXPECT_FALSE(request.has_insert_questions);
  EXPECT_FALSE(request.brute);
  // Full field set.
  ASSERT_TRUE(ParseJson(
      R"({"op":"recourse","student":"s","question":3,"k":3,"top":5,)"
      R"("target_p":0.75,"insert_questions":[1,4],"brute":true})",
      &v, &error));
  ASSERT_TRUE(ParseServeRequest(v, &request, &error)) << error;
  EXPECT_EQ(request.k, 3);
  EXPECT_EQ(request.top, 5);
  EXPECT_DOUBLE_EQ(request.target_p, 0.75);
  ASSERT_TRUE(request.has_insert_questions);
  EXPECT_EQ(request.insert_questions, (std::vector<int64_t>{1, 4}));
  EXPECT_TRUE(request.brute);
  // Duplicate keys: the first wins (JsonValue::Find contract), so a
  // spoofed second "k" cannot smuggle a different budget past validation.
  ASSERT_TRUE(ParseJson(
      R"({"op":"recourse","student":"s","question":3,"k":1,"k":4})", &v,
      &error));
  ASSERT_TRUE(ParseServeRequest(v, &request, &error)) << error;
  EXPECT_EQ(request.k, 1);
  // Overflowing numbers are hard parse errors, never silent fallbacks.
  ASSERT_TRUE(ParseJson(
      R"({"op":"recourse","student":"s","question":3,"k":1e300})", &v,
      &error));
  EXPECT_FALSE(ParseServeRequest(v, &request, &error));
  ASSERT_TRUE(ParseJson(
      R"({"op":"recourse","student":"s","question":3,"top":1e300})", &v,
      &error));
  EXPECT_FALSE(ParseServeRequest(v, &request, &error));
  // Type confusion on every recourse field.
  ASSERT_TRUE(ParseJson(
      R"({"op":"recourse","student":"s","question":3,"target_p":"high"})", &v,
      &error));
  EXPECT_FALSE(ParseServeRequest(v, &request, &error));
  ASSERT_TRUE(ParseJson(
      R"({"op":"recourse","student":"s","question":3,"insert_questions":7})",
      &v, &error));
  EXPECT_FALSE(ParseServeRequest(v, &request, &error));
  ASSERT_TRUE(ParseJson(
      R"({"op":"recourse","student":"s","question":3,)"
      R"("insert_questions":[1,1e300]})",
      &v, &error));
  EXPECT_FALSE(ParseServeRequest(v, &request, &error));
}

// ---- Chunked recurrent forward (the initial/final state plumbing) ----

TEST(ServeStreamTest, LstmChunkedForwardBitIdentical) {
  Rng rng(3);
  nn::LSTM lstm(8, 8, rng);
  const Tensor x = Tensor::Uniform({2, 10, 8}, -1.0f, 1.0f, rng);
  ag::NoGradGuard guard;
  const Tensor full = lstm.Forward(ag::Constant(x)).value();

  // Same sequence in two chunks, threading the state across the split.
  Tensor a = Tensor::Zeros({2, 4, 8});
  Tensor b = Tensor::Zeros({2, 6, 8});
  for (int64_t row = 0; row < 2; ++row) {
    const float* src = x.data() + row * 10 * 8;
    std::memcpy(a.data() + row * 4 * 8, src, 4 * 8 * sizeof(float));
    std::memcpy(b.data() + row * 6 * 8, src + 4 * 8, 6 * 8 * sizeof(float));
  }
  nn::LSTMCell::State mid;
  const Tensor out_a =
      lstm.Forward(ag::Constant(a), false, nullptr, &mid).value();
  const Tensor out_b = lstm.Forward(ag::Constant(b), false, &mid).value();
  for (int64_t row = 0; row < 2; ++row) {
    EXPECT_EQ(std::memcmp(full.data() + row * 10 * 8,
                          out_a.data() + row * 4 * 8, 4 * 8 * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(full.data() + row * 10 * 8 + 4 * 8,
                          out_b.data() + row * 6 * 8, 6 * 8 * sizeof(float)),
              0);
  }
}

TEST(ServeStreamTest, GruChunkedForwardBitIdentical) {
  Rng rng(5);
  nn::GRU gru(8, 8, rng);
  const Tensor x = Tensor::Uniform({1, 9, 8}, -1.0f, 1.0f, rng);
  ag::NoGradGuard guard;
  const Tensor full = gru.Forward(ag::Constant(x)).value();

  Tensor a = Tensor::Zeros({1, 3, 8});
  Tensor b = Tensor::Zeros({1, 6, 8});
  std::memcpy(a.data(), x.data(), 3 * 8 * sizeof(float));
  std::memcpy(b.data(), x.data() + 3 * 8, 6 * 8 * sizeof(float));
  ag::Variable mid;
  const Tensor out_a =
      gru.Forward(ag::Constant(a), false, nullptr, &mid).value();
  const Tensor out_b = gru.Forward(ag::Constant(b), false, &mid).value();
  EXPECT_EQ(std::memcmp(full.data(), out_a.data(), 3 * 8 * sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(full.data() + 3 * 8, out_b.data(),
                        6 * 8 * sizeof(float)),
            0);
}

// ---- Forward-stream step == replay, per encoder ----

class ForwardStreamSuite
    : public ::testing::TestWithParam<rckt::EncoderKind> {};

TEST_P(ForwardStreamSuite, StepByStepMatchesReplay) {
  Rng rng(7);
  auto encoder = rckt::MakeBiEncoder(GetParam(), /*dim=*/16, /*num_layers=*/2,
                                     /*num_heads=*/2, /*dropout_p=*/0.0f,
                                     rng);
  const int64_t T = 12, d = 16;
  const Tensor a_seq = Tensor::Uniform({1, T, d}, -1.0f, 1.0f, rng);

  auto replay_state = encoder->NewForwardStream();
  const Tensor replayed = encoder->ReplayForward(*replay_state, a_seq);
  ASSERT_EQ(replayed.numel(), T * d);

  auto step_state = encoder->NewForwardStream();
  for (int64_t t = 0; t < T; ++t) {
    Tensor row = Tensor::Zeros({1, d});
    std::memcpy(row.data(), a_seq.data() + t * d,
                static_cast<size_t>(d) * sizeof(float));
    const Tensor f = encoder->StepForward(*step_state, row);
    ASSERT_EQ(f.numel(), d);
    EXPECT_EQ(std::memcmp(f.data(), replayed.data() + t * d,
                          static_cast<size_t>(d) * sizeof(float)),
              0)
        << "step " << t << " diverges from replay";
  }
  EXPECT_GT(encoder->StateBytes(T), 0u);
}

TEST_P(ForwardStreamSuite, StepForwardManyMatchesSingles) {
  Rng rng(11);
  auto encoder = rckt::MakeBiEncoder(GetParam(), 16, 2, 2, 0.0f, rng);
  const int64_t k = 5, d = 16;
  // Advance k independent streams a few steps, then compare one batched
  // StepForwardMany against per-stream StepForward from identical states.
  std::vector<std::unique_ptr<rckt::ForwardStreamState>> batched, singles;
  Rng data_rng(13);
  std::vector<Tensor> warm(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    batched.push_back(encoder->NewForwardStream());
    singles.push_back(encoder->NewForwardStream());
    warm[static_cast<size_t>(i)] =
        Tensor::Uniform({1, d}, -1.0f, 1.0f, data_rng);
  }
  for (int64_t i = 0; i < k; ++i) {
    encoder->StepForward(*batched[static_cast<size_t>(i)],
                         warm[static_cast<size_t>(i)]);
    encoder->StepForward(*singles[static_cast<size_t>(i)],
                         warm[static_cast<size_t>(i)]);
  }
  std::vector<Tensor> rows(static_cast<size_t>(k));
  std::vector<rckt::ForwardStreamState*> batched_ptrs;
  for (int64_t i = 0; i < k; ++i) {
    rows[static_cast<size_t>(i)] =
        Tensor::Uniform({1, d}, -1.0f, 1.0f, data_rng);
    batched_ptrs.push_back(batched[static_cast<size_t>(i)].get());
  }
  const auto many = encoder->StepForwardMany(batched_ptrs, rows);
  ASSERT_EQ(many.size(), static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    const Tensor single = encoder->StepForward(
        *singles[static_cast<size_t>(i)], rows[static_cast<size_t>(i)]);
    EXPECT_TRUE(BitEqual(many[static_cast<size_t>(i)], single))
        << "stream " << i << " diverges under batched stepping";
  }
}

TEST_P(ForwardStreamSuite, StepForwardRunMatchesSingleSteps) {
  Rng rng(17);
  auto encoder = rckt::MakeBiEncoder(GetParam(), 16, 2, 2, 0.0f, rng);
  const int64_t warm = 6, run = 5, d = 16;
  const Tensor a_seq = Tensor::Uniform({1, warm + run, d}, -1.0f, 1.0f, rng);
  // Warm both streams identically, then advance one with a bulk run and
  // the other step by step over the same rows.
  auto bulk = encoder->NewForwardStream();
  auto single = encoder->NewForwardStream();
  for (int64_t t = 0; t < warm; ++t) {
    Tensor row = Tensor::Zeros({1, d});
    std::memcpy(row.data(), a_seq.data() + t * d,
                static_cast<size_t>(d) * sizeof(float));
    encoder->StepForward(*bulk, row);
    encoder->StepForward(*single, row);
  }
  Tensor a_run = Tensor::Zeros({1, run, d});
  std::memcpy(a_run.data(), a_seq.data() + warm * d,
              static_cast<size_t>(run * d) * sizeof(float));
  const Tensor bulk_out = encoder->StepForwardRun(*bulk, a_run);
  ASSERT_EQ(bulk_out.numel(), run * d);
  for (int64_t t = 0; t < run; ++t) {
    Tensor row = Tensor::Zeros({1, d});
    std::memcpy(row.data(), a_run.data() + t * d,
                static_cast<size_t>(d) * sizeof(float));
    const Tensor f = encoder->StepForward(*single, row);
    EXPECT_EQ(std::memcmp(f.data(), bulk_out.data() + t * d,
                          static_cast<size_t>(d) * sizeof(float)),
              0)
        << "bulk run row " << t << " diverges from single steps";
  }
  // The bulk run must leave the stream in the stepped state too.
  Tensor probe = Tensor::Uniform({1, d}, -1.0f, 1.0f, rng);
  EXPECT_TRUE(BitEqual(encoder->StepForward(*bulk, probe),
                       encoder->StepForward(*single, probe)))
      << "stream state diverges after a bulk run";
}

TEST_P(ForwardStreamSuite, CloneStreamPrefixRewindsAttentionStreams) {
  Rng rng(19);
  auto encoder = rckt::MakeBiEncoder(GetParam(), 16, 2, 2, 0.0f, rng);
  const int64_t T = 10, prefix = 4, d = 16;
  const Tensor a_seq = Tensor::Uniform({1, T, d}, -1.0f, 1.0f, rng);
  auto full = encoder->NewForwardStream();
  encoder->ReplayForward(*full, a_seq);
  auto clone = encoder->CloneStreamPrefix(*full, prefix);
  const bool is_attention = GetParam() == rckt::EncoderKind::kSAKT ||
                            GetParam() == rckt::EncoderKind::kAKT;
  if (!is_attention) {
    // Recurrent streams fold history into O(1) rows and cannot rewind.
    EXPECT_EQ(clone, nullptr);
    return;
  }
  ASSERT_NE(clone, nullptr);
  // The clone must behave exactly like a stream that only ever saw the
  // prefix: stepping the next row reproduces the prefix-only stream's bits.
  auto prefix_only = encoder->NewForwardStream();
  for (int64_t t = 0; t < prefix; ++t) {
    Tensor row = Tensor::Zeros({1, d});
    std::memcpy(row.data(), a_seq.data() + t * d,
                static_cast<size_t>(d) * sizeof(float));
    encoder->StepForward(*prefix_only, row);
  }
  Tensor next = Tensor::Uniform({1, d}, -1.0f, 1.0f, rng);
  EXPECT_TRUE(BitEqual(encoder->StepForward(*clone, next),
                       encoder->StepForward(*prefix_only, next)))
      << "prefix clone diverges from a prefix-only stream";
  // Cloning never disturbs the donor stream.
  Tensor probe = Tensor::Uniform({1, d}, -1.0f, 1.0f, rng);
  auto untouched = encoder->NewForwardStream();
  encoder->ReplayForward(*untouched, a_seq);
  EXPECT_TRUE(BitEqual(encoder->StepForward(*full, probe),
                       encoder->StepForward(*untouched, probe)))
      << "CloneStreamPrefix mutated the source stream";
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, ForwardStreamSuite,
                         ::testing::Values(rckt::EncoderKind::kDKT,
                                           rckt::EncoderKind::kGRU,
                                           rckt::EncoderKind::kSAKT,
                                           rckt::EncoderKind::kAKT),
                         [](const auto& info) {
                           return std::string(
                               rckt::EncoderKindName(info.param));
                         });

// ---- Online predict == offline generator score, at 1/2/8 threads ----

class EngineParitySuite : public ::testing::TestWithParam<rckt::EncoderKind> {
 protected:
  void SetUp() override { saved_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_P(EngineParitySuite, PredictMatchesOfflineGeneratorBitwise) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(GetParam()));
  const auto& seq = ds.sequences[0];

  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    EngineOptions options;
    options.num_questions = ds.num_questions;
    options.num_concepts = ds.num_concepts;
    InferenceEngine engine(model, options);

    for (int64_t t = 0; t < seq.length(); ++t) {
      const auto& it = seq.interactions[static_cast<size_t>(t)];
      if (t >= 2) {
        ServeRequest predict;
        predict.op = Op::kPredict;
        predict.student = "s0";
        predict.question = it.question;
        predict.has_concepts = true;
        predict.concepts = it.concepts;
        const ServeResponse online = engine.Execute(predict);
        ASSERT_TRUE(online.ok) << online.error;

        data::Batch batch = rckt::MakePrefixBatch({{&seq, t}});
        const float offline = model.GeneratorScoreTargets(batch)[0];
        EXPECT_EQ(Bits(online.p), Bits(offline))
            << "target " << t << " threads " << threads << ": online "
            << online.p << " vs offline " << offline;
      }
      ServeRequest update;
      update.op = Op::kUpdate;
      update.student = "s0";
      update.question = it.question;
      update.response = it.response;
      update.has_concepts = true;
      update.concepts = it.concepts;
      ASSERT_TRUE(engine.Execute(update).ok);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, EngineParitySuite,
                         ::testing::Values(rckt::EncoderKind::kDKT,
                                           rckt::EncoderKind::kGRU,
                                           rckt::EncoderKind::kSAKT,
                                           rckt::EncoderKind::kAKT),
                         [](const auto& info) {
                           return std::string(
                               rckt::EncoderKindName(info.param));
                         });

// ---- Session store: LRU accounting and eviction ----

TEST(SessionStoreTest, EvictsColdStateButKeepsHistory) {
  SessionStore store(/*budget_bytes=*/100);
  Session& a = store.GetOrCreate("a");
  a.history.push_back({1, 1, {0}});
  store.SetStateBytes(a, 60);
  Session& b = store.GetOrCreate("b");
  store.SetStateBytes(b, 60);  // over budget -> a (older) evicted

  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.total_state_bytes(), 60u);
  Session* a_again = store.Find("a");
  ASSERT_NE(a_again, nullptr);
  EXPECT_EQ(a_again->stream, nullptr);
  EXPECT_EQ(a_again->state_bytes, 0u);
  EXPECT_EQ(a_again->history.size(), 1u);  // history survives eviction
}

TEST(SessionStoreTest, HistoryBytesCountAgainstBudget) {
  // Regression: history bytes used to be invisible to the budget, so a
  // store full of long histories never evicted anything. With history
  // charged, the same state load must now push cold neural state out.
  SessionStore store(/*budget_bytes=*/100);
  Session& a = store.GetOrCreate("a");
  store.SetHistoryBytes(a, 60);
  store.SetStateBytes(a, 30);
  EXPECT_EQ(store.evictions(), 0u);  // 60 + 30 fits
  Session& b = store.GetOrCreate("b");
  store.SetStateBytes(b, 30);  // 60 + 30 + 30 > 100 -> evict a's state
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(a.state_bytes, 0u);
  // The history itself is never reclaimed — only charged.
  EXPECT_EQ(a.history_bytes, 60u);
  EXPECT_EQ(store.total_state_bytes(), 30u);
  EXPECT_EQ(store.total_history_bytes(), 60u);
  // A store over budget on history alone settles at zero neural state
  // without spinning. The session being accounted keeps its own state
  // (same protection SetStateBytes grants); the next accounting pass on
  // any other session reclaims it.
  store.SetHistoryBytes(b, 200);
  EXPECT_EQ(b.history_bytes, 200u);
  EXPECT_EQ(b.state_bytes, 30u);
  store.SetStateBytes(a, 0);
  EXPECT_EQ(store.evictions(), 2u);
  EXPECT_EQ(store.total_state_bytes(), 0u);
  // Erase returns the history bytes to the pool.
  store.Erase("b");
  EXPECT_EQ(store.total_history_bytes(), 60u);
  store.Erase("a");
  EXPECT_EQ(store.total_history_bytes(), 0u);
}

TEST(SessionStoreTest, NeverEvictsTheSessionBeingAccounted) {
  SessionStore store(/*budget_bytes=*/10);
  Session& a = store.GetOrCreate("a");
  store.SetStateBytes(a, 50);  // alone over budget: kept anyway
  EXPECT_EQ(store.total_state_bytes(), 50u);
  EXPECT_EQ(store.evictions(), 0u);
}

TEST(SessionStoreTest, PinScopeBlocksEvictionUntilRelease) {
  SessionStore store(/*budget_bytes=*/100);
  Session& a = store.GetOrCreate("a");
  Session& b = store.GetOrCreate("b");
  {
    SessionStore::PinScope pins(store);
    pins.Pin(a);
    pins.Pin(b);
    store.SetStateBytes(a, 60);
    // Accounting b pushes the store over budget, but a is pinned: its
    // state must survive until the scope ends.
    store.SetStateBytes(b, 60);
    EXPECT_EQ(store.evictions(), 0u);
    EXPECT_EQ(store.total_state_bytes(), 120u);
    EXPECT_EQ(a.state_bytes, 60u);
  }
  // Releasing the pins settles the budget: the colder session (a) loses
  // its neural state.
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.total_state_bytes(), 60u);
  EXPECT_EQ(a.state_bytes, 0u);
  EXPECT_EQ(b.state_bytes, 60u);
}

TEST(EngineEvictionTest, ReplayAfterEvictionIsBitIdentical) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kSAKT));
  // A budget of one byte evicts every session as soon as another is touched.
  EngineOptions options;
  options.session_budget_bytes = 1;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);

  auto update = [&](const std::string& student, int64_t t) {
    const auto& it = ds.sequences[0].interactions[static_cast<size_t>(t)];
    ServeRequest request;
    request.op = Op::kUpdate;
    request.student = student;
    request.question = it.question;
    request.response = it.response;
    request.has_concepts = true;
    request.concepts = it.concepts;
    ASSERT_TRUE(engine.Execute(request).ok);
  };
  auto predict = [&](const std::string& student, int64_t t) -> float {
    const auto& it = ds.sequences[0].interactions[static_cast<size_t>(t)];
    ServeRequest request;
    request.op = Op::kPredict;
    request.student = student;
    request.question = it.question;
    request.has_concepts = true;
    request.concepts = it.concepts;
    const ServeResponse response = engine.Execute(request);
    EXPECT_TRUE(response.ok) << response.error;
    return response.p;
  };

  for (int64_t t = 0; t < 6; ++t) update("a", t);
  const float before = predict("a", 6);
  // Touching b evicts a's KV cache (budget is 1 byte).
  for (int64_t t = 0; t < 3; ++t) update("b", t);
  EXPECT_GT(engine.sessions().evictions(), 0u);
  ASSERT_NE(engine.sessions().size(), 0u);
  // a's next predict replays its kept history into a fresh stream: the
  // rebuilt state must reproduce the prediction bit for bit.
  const float after = predict("a", 6);
  EXPECT_EQ(Bits(before), Bits(after));
}

// ---- Cold start: 0-4 interactions of history (scenario-fleet regression) ----

TEST(EngineColdStartTest, ShortHistoriesPredictBitIdenticalToOffline) {
  // The cold_start scenario floods the server with sessions holding 0-4
  // interactions: the empty-history predict and the shortest replays.
  // Every one of them must match the offline generator bit for bit.
  // GeneratorScoreTargets refuses empty histories, so for h=0 the offline
  // reference is the generator forward computed from the model's own
  // layers with the zero encoder boundary at position 0.
  data::Dataset ds = TinyDataset();
  const auto& seq = ds.sequences[0];
  for (rckt::EncoderKind kind :
       {rckt::EncoderKind::kDKT, rckt::EncoderKind::kGRU,
        rckt::EncoderKind::kSAKT, rckt::EncoderKind::kAKT}) {
    const rckt::RcktConfig config = SmallConfig(kind);
    rckt::RCKT model(ds.num_questions, ds.num_concepts, config);
    EngineOptions options;
    options.num_questions = ds.num_questions;
    options.num_concepts = ds.num_concepts;
    InferenceEngine engine(model, options);
    for (int64_t h = 0; h <= 4; ++h) {
      const auto& it = seq.interactions[static_cast<size_t>(h)];
      ServeRequest predict;
      predict.op = Op::kPredict;
      predict.student = "cold";
      predict.question = it.question;
      predict.has_concepts = true;
      predict.concepts = it.concepts;
      const ServeResponse online = engine.Execute(predict);
      ASSERT_TRUE(online.ok) << online.error;

      float offline = 0.0f;
      if (h == 0) {
        ag::NoGradGuard no_grad;
        const ag::Variable e =
            model.embedder().QuestionEmbedRows({it.question}, {it.concepts});
        const int64_t dim = config.dim;
        Tensor x(Shape{1, 2 * dim});
        std::memset(x.data(), 0, static_cast<size_t>(dim) * sizeof(float));
        std::memcpy(x.data() + dim, e.value().data(),
                    static_cast<size_t>(dim) * sizeof(float));
        const ag::Variable mid =
            model.mlp_hidden().ForwardAct(ag::Constant(x), ag::Act::kRelu);
        offline =
            model.mlp_out().ForwardAct(mid, ag::Act::kSigmoid).value().flat(0);
      } else {
        data::Batch batch = rckt::MakePrefixBatch({{&seq, h}});
        offline = model.GeneratorScoreTargets(batch)[0];
      }
      EXPECT_EQ(Bits(online.p), Bits(offline))
          << rckt::EncoderKindName(kind) << " history " << h << ": online "
          << online.p << " vs offline " << offline;

      ServeRequest update = predict;
      update.op = Op::kUpdate;
      update.response = it.response;
      ASSERT_TRUE(engine.Execute(update).ok);
    }
  }
}

TEST(EngineColdStartTest, ShortHistoriesSurviveEvictionAndReplay) {
  // Cold-start floods churn the LRU session store; a 1-byte budget forces
  // an eviction on every session touch. Each short session's rebuilt
  // state must reproduce its prediction bit for bit — including the
  // zero-history session, whose replay is empty.
  data::Dataset ds = TinyDataset();
  const auto& seq = ds.sequences[0];
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kSAKT));
  EngineOptions options;
  options.session_budget_bytes = 1;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);

  auto predict_at = [&](const std::string& student, int64_t t) -> float {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    ServeRequest request;
    request.op = Op::kPredict;
    request.student = student;
    request.question = it.question;
    request.has_concepts = true;
    request.concepts = it.concepts;
    const ServeResponse response = engine.Execute(request);
    EXPECT_TRUE(response.ok) << response.error;
    return response.p;
  };

  // Five students with 0, 1, 2, 3, 4 interactions of history.
  std::vector<float> before(5);
  for (int64_t h = 0; h <= 4; ++h) {
    const std::string student = "cold" + std::to_string(h);
    for (int64_t t = 0; t < h; ++t) {
      const auto& it = seq.interactions[static_cast<size_t>(t)];
      ServeRequest update;
      update.op = Op::kUpdate;
      update.student = student;
      update.question = it.question;
      update.response = it.response;
      update.has_concepts = true;
      update.concepts = it.concepts;
      ASSERT_TRUE(engine.Execute(update).ok);
    }
    before[static_cast<size_t>(h)] = predict_at(student, h);
  }
  EXPECT_GT(engine.sessions().evictions(), 0u);
  // Re-predicting replays each session's kept history into fresh state.
  for (int64_t h = 0; h <= 4; ++h) {
    const std::string student = "cold" + std::to_string(h);
    EXPECT_EQ(Bits(predict_at(student, h)),
              Bits(before[static_cast<size_t>(h)]))
        << "history " << h;
  }
}

// ---- Batched execution == sequential execution ----

TEST(EngineBatchTest, ExecuteBatchMatchesSequentialExecution) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine batched_engine(model, options);
  InferenceEngine sequential_engine(model, options);

  // Mixed stream: coalescable predict runs, update runs with a repeated
  // student (forcing a run break), and interleaved ops.
  std::vector<ServeRequest> requests;
  auto add = [&](Op op, const std::string& student, int64_t t) {
    const auto& it = ds.sequences[1].interactions[static_cast<size_t>(t)];
    ServeRequest request;
    request.op = op;
    request.student = student;
    request.question = it.question;
    request.response = it.response;
    request.has_concepts = true;
    request.concepts = it.concepts;
    requests.push_back(request);
  };
  for (int64_t t = 0; t < 4; ++t) {
    add(Op::kUpdate, "x", t);
    add(Op::kUpdate, "y", t);
    add(Op::kUpdate, "x", t);  // same student twice in one run
  }
  add(Op::kPredict, "x", 4);
  add(Op::kPredict, "y", 4);
  add(Op::kPredict, "z", 4);  // empty history predict
  add(Op::kUpdate, "z", 0);
  add(Op::kPredict, "z", 1);

  const auto batched = batched_engine.ExecuteBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const ServeResponse expected = sequential_engine.Execute(requests[i]);
    EXPECT_EQ(batched[i].ok, expected.ok) << "request " << i;
    EXPECT_EQ(Bits(batched[i].p), Bits(expected.p)) << "request " << i;
    EXPECT_EQ(batched[i].history, expected.history) << "request " << i;
  }
}

TEST(EngineBatchTest, TightBudgetBatchedUpdatesMatchSequential) {
  // Regression test: a coalesced update run collects raw stream pointers
  // for several sessions before stepping them together. Under a tight
  // budget, EnsureStream for a later student used to evict an earlier
  // student's stream mid-run (use-after-free in StepForwardMany). The
  // one-byte budget plus SAKT's KV caches makes every accounting call an
  // eviction candidate.
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kSAKT));
  EngineOptions tight;
  tight.session_budget_bytes = 1;
  tight.num_questions = ds.num_questions;
  tight.num_concepts = ds.num_concepts;
  InferenceEngine batched_engine(model, tight);
  EngineOptions roomy = tight;
  roomy.session_budget_bytes = 0;  // unlimited
  InferenceEngine sequential_engine(model, roomy);

  const std::vector<std::string> students = {"a", "b", "c"};
  auto make = [&](Op op, const std::string& student, int64_t t) {
    const auto& it = ds.sequences[2].interactions[static_cast<size_t>(t)];
    ServeRequest request;
    request.op = op;
    request.student = student;
    request.question = it.question;
    request.response = it.response;
    request.has_concepts = true;
    request.concepts = it.concepts;
    return request;
  };
  // Several rounds so every later round replays evicted histories inside
  // the coalesced run before the batched encoder step.
  for (int64_t t = 0; t < 5; ++t) {
    std::vector<ServeRequest> round;
    for (const std::string& s : students) round.push_back(make(Op::kUpdate, s, t));
    for (const std::string& s : students) round.push_back(make(Op::kPredict, s, 5));
    const auto batched = batched_engine.ExecuteBatch(round);
    ASSERT_EQ(batched.size(), round.size());
    for (size_t i = 0; i < round.size(); ++i) {
      const ServeResponse expected = sequential_engine.Execute(round[i]);
      ASSERT_TRUE(batched[i].ok) << batched[i].error;
      ASSERT_TRUE(expected.ok) << expected.error;
      EXPECT_EQ(Bits(batched[i].p), Bits(expected.p))
          << "round " << t << " request " << i;
      EXPECT_EQ(batched[i].history, expected.history)
          << "round " << t << " request " << i;
    }
  }
  // The tight budget must be enforced once the runs complete (everything
  // evictable got evicted), while histories survive for replay.
  EXPECT_GT(batched_engine.sessions().evictions(), 0u);
}

TEST(BatcherTest, ConcurrentSubmissionsMatchSequentialPerStudent) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kGRU));
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);
  InferenceEngine reference(model, options);

  BatcherOptions batcher_options;
  batcher_options.max_batch = 8;
  batcher_options.max_wait_us = 2000;
  MicroBatcher batcher(engine, batcher_options);

  // Each worker drives its own student through updates + predicts via the
  // batcher; the dispatcher coalesces arbitrary interleavings. Every
  // worker's results must match a sequential single-student run, because
  // session streams are independent and the engine's stacking is row-wise.
  constexpr int kWorkers = 6;
  const auto& seq = ds.sequences[2];
  std::vector<std::vector<float>> got(kWorkers);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      const std::string student = "w" + std::to_string(w);
      for (int64_t t = 0; t < 8; ++t) {
        const auto& it = seq.interactions[static_cast<size_t>(t)];
        ServeRequest predict;
        predict.op = Op::kPredict;
        predict.student = student;
        predict.question = it.question;
        predict.has_concepts = true;
        predict.concepts = it.concepts;
        const ServeResponse response = batcher.Submit(predict);
        ASSERT_TRUE(response.ok) << response.error;
        got[static_cast<size_t>(w)].push_back(response.p);

        ServeRequest update = predict;
        update.op = Op::kUpdate;
        update.response = it.response;
        ASSERT_TRUE(batcher.Submit(update).ok);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  batcher.Stop();

  // Sequential reference for one student (all students see the same
  // interactions, so every worker must have produced these exact bits).
  std::vector<float> want;
  for (int64_t t = 0; t < 8; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    ServeRequest predict;
    predict.op = Op::kPredict;
    predict.student = "ref";
    predict.question = it.question;
    predict.has_concepts = true;
    predict.concepts = it.concepts;
    want.push_back(reference.Execute(predict).p);
    ServeRequest update = predict;
    update.op = Op::kUpdate;
    update.response = it.response;
    ASSERT_TRUE(reference.Execute(update).ok);
  }
  for (int w = 0; w < kWorkers; ++w) {
    ASSERT_EQ(got[static_cast<size_t>(w)].size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(Bits(got[static_cast<size_t>(w)][i]), Bits(want[i]))
          << "worker " << w << " step " << i;
    }
  }
}

// ---- Engine validation and explain ----

TEST(EngineTest, RejectsOutOfRangeIdsWithoutAborting) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);

  ServeRequest request;
  request.op = Op::kPredict;
  request.student = "s";
  request.question = ds.num_questions + 5;  // out of range
  ServeResponse response = engine.Execute(request);
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.error.empty());

  request.question = 0;
  request.has_concepts = true;
  request.concepts = {ds.num_concepts + 1};
  response = engine.Execute(request);
  EXPECT_FALSE(response.ok);

  request.student.clear();
  request.concepts.clear();
  response = engine.Execute(request);
  EXPECT_FALSE(response.ok);
}

TEST(EngineTest, ExplainMatchesOfflineExplainTargets) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);

  const auto& seq = ds.sequences[3];
  const int64_t target = 6;
  for (int64_t t = 0; t < target; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    ServeRequest update;
    update.op = Op::kUpdate;
    update.student = "s";
    update.question = it.question;
    update.response = it.response;
    update.has_concepts = true;
    update.concepts = it.concepts;
    ASSERT_TRUE(engine.Execute(update).ok);
  }
  ServeRequest explain;
  explain.op = Op::kExplain;
  explain.student = "s";
  explain.question = seq.interactions[static_cast<size_t>(target)].question;
  explain.has_concepts = true;
  explain.concepts = seq.interactions[static_cast<size_t>(target)].concepts;
  const ServeResponse online = engine.Execute(explain);
  ASSERT_TRUE(online.ok) << online.error;

  data::Batch batch = rckt::MakePrefixBatch({{&seq, target}});
  const auto offline = model.ExplainTargets(batch).front();
  ASSERT_EQ(online.influence.size(), offline.influence.size());
  for (size_t i = 0; i < offline.influence.size(); ++i) {
    EXPECT_EQ(Bits(online.influence[i]), Bits(offline.influence[i]))
        << "influence " << i;
  }
  EXPECT_EQ(Bits(online.total_correct), Bits(offline.total_correct));
  EXPECT_EQ(Bits(online.total_incorrect), Bits(offline.total_incorrect));
  EXPECT_EQ(online.predicted_correct, offline.predicted_correct);
}

// ---- Recourse ----

namespace {

void FeedPrefix(InferenceEngine& engine, const data::ResponseSequence& seq,
                int64_t n, const std::string& student) {
  for (int64_t t = 0; t < n; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    ServeRequest update;
    update.op = Op::kUpdate;
    update.student = student;
    update.question = it.question;
    update.response = it.response;
    update.has_concepts = true;
    update.concepts = it.concepts;
    ASSERT_TRUE(engine.Execute(update).ok);
  }
}

// Everything the recourse wire contract pins, flattened to one comparable
// string: base_p bits, candidate count, and per candidate the probability
// bits plus the full ordered intervention list.
std::string RecourseSignature(const ServeResponse& response) {
  std::string s = std::to_string(Bits(response.base_p)) + "|" +
                  std::to_string(response.evaluated);
  for (const Counterfactual& candidate : response.candidates) {
    s += ";" + std::to_string(Bits(candidate.p));
    for (const Intervention& intervention : candidate.interventions) {
      s += (intervention.kind == Intervention::Kind::kFlipResponse ? ",f"
                                                                   : ",i");
      s += std::to_string(intervention.position) + ":" +
           std::to_string(intervention.question);
    }
  }
  return s;
}

}  // namespace

TEST(EngineRecourseTest, ValidatesRequestRanges) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);
  FeedPrefix(engine, ds.sequences[0], 4, "s");

  ServeRequest base;
  base.op = Op::kRecourse;
  base.student = "s";
  base.question = ds.sequences[0].interactions[4].question;

  EXPECT_TRUE(engine.Execute(base).ok);
  auto rejects = [&](const std::function<void(ServeRequest&)>& mutate) {
    ServeRequest request = base;
    mutate(request);
    const ServeResponse response = engine.Execute(request);
    EXPECT_FALSE(response.ok);
    EXPECT_FALSE(response.error.empty());
  };
  rejects([](ServeRequest& r) { r.k = 0; });
  rejects([](ServeRequest& r) { r.k = 5; });
  rejects([](ServeRequest& r) { r.top = 0; });
  rejects([](ServeRequest& r) { r.top = 17; });
  rejects([](ServeRequest& r) { r.target_p = 2.0; });
  rejects([](ServeRequest& r) { r.target_p = -0.5; });
  rejects([](ServeRequest& r) { r.student.clear(); });
  rejects([](ServeRequest& r) { r.question = -1; });
  rejects([&](ServeRequest& r) {
    r.has_insert_questions = true;
    r.insert_questions = {ds.num_questions + 2};
  });
  rejects([](ServeRequest& r) {
    r.has_insert_questions = true;
    r.insert_questions = {-3};
  });

  // An oversized insert list is capped (4 primitives), not rejected, and
  // duplicates collapse.
  ServeRequest many = base;
  many.k = 1;
  many.has_insert_questions = true;
  many.insert_questions = {0, 1, 2, 3, 4, 5, 0, 1};
  const ServeResponse response = engine.Execute(many);
  ASSERT_TRUE(response.ok) << response.error;
  for (const auto& candidate : response.candidates) {
    for (const auto& intervention : candidate.interventions) {
      if (intervention.kind == Intervention::Kind::kInsertPractice) {
        EXPECT_LE(intervention.question, 3);  // entries past the cap dropped
      }
    }
  }
  EXPECT_GT(response.evaluated, 0);
}

TEST(EngineRecourseTest, EmptyHistoryScoresInsertPracticeOnly) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kGRU));
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);

  ServeRequest request;
  request.op = Op::kRecourse;
  request.student = "fresh";
  request.question = 3;
  request.k = 2;
  const ServeResponse fast = engine.Execute(request);
  ASSERT_TRUE(fast.ok) << fast.error;
  EXPECT_EQ(fast.history, 0);
  // No incorrect answers to flip; the default insert primitive (practice
  // the target itself) is the only candidate.
  ASSERT_EQ(fast.evaluated, 1);
  ASSERT_EQ(fast.candidates.size(), 1u);
  EXPECT_EQ(fast.candidates[0].interventions.size(), 1u);
  EXPECT_EQ(fast.candidates[0].interventions[0].kind,
            Intervention::Kind::kInsertPractice);
  EXPECT_EQ(fast.candidates[0].interventions[0].question, 3);
  EXPECT_EQ(Bits(fast.candidates[0].lift),
            Bits(fast.candidates[0].p - fast.base_p));

  ServeRequest brute = request;
  brute.brute = true;
  EXPECT_EQ(RecourseSignature(engine.Execute(brute)),
            RecourseSignature(fast));
}

TEST(EngineRecourseTest, TargetPMarksReachedCandidates) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  InferenceEngine engine(model, options);
  FeedPrefix(engine, ds.sequences[2], 8, "s");

  ServeRequest request;
  request.op = Op::kRecourse;
  request.student = "s";
  request.question = ds.sequences[2].interactions[8].question;
  request.top = 16;
  request.target_p = 0.0;  // every candidate reaches a zero goal
  ServeResponse response = engine.Execute(request);
  ASSERT_TRUE(response.ok) << response.error;
  ASSERT_FALSE(response.candidates.empty());
  for (const auto& candidate : response.candidates) {
    EXPECT_TRUE(candidate.reaches_target);
  }
  request.target_p = 1.0;  // sigmoid output never reaches exactly 1
  response = engine.Execute(request);
  ASSERT_TRUE(response.ok);
  for (const auto& candidate : response.candidates) {
    EXPECT_FALSE(candidate.reaches_target);
  }
  // Without a goal the flag stays false.
  request.target_p = -1.0;
  response = engine.Execute(request);
  ASSERT_TRUE(response.ok);
  for (const auto& candidate : response.candidates) {
    EXPECT_FALSE(candidate.reaches_target);
  }
}

TEST_P(EngineParitySuite, RecourseFastMatchesBruteBitwiseAcrossThreads) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(GetParam()));
  const auto& seq = ds.sequences[3];
  const int64_t prefix = 8;

  std::string reference;
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    EngineOptions options;
    options.num_questions = ds.num_questions;
    options.num_concepts = ds.num_concepts;
    InferenceEngine engine(model, options);
    FeedPrefix(engine, seq, prefix, "s0");

    ServeRequest request;
    request.op = Op::kRecourse;
    request.student = "s0";
    request.question = seq.interactions[static_cast<size_t>(prefix)].question;
    request.has_concepts = true;
    request.concepts = seq.interactions[static_cast<size_t>(prefix)].concepts;
    request.k = 2;
    request.top = 16;
    request.has_insert_questions = true;
    request.insert_questions = {request.question,
                                (request.question + 1) % ds.num_questions};

    const ServeResponse fast = engine.Execute(request);
    ASSERT_TRUE(fast.ok) << fast.error;
    EXPECT_GT(fast.evaluated, 2);
    ASSERT_FALSE(fast.candidates.empty());

    // The fast path (stream clone + stacked generator variants) must be
    // bitwise the brute-force per-candidate offline re-encode...
    ServeRequest brute_request = request;
    brute_request.brute = true;
    const ServeResponse brute = engine.Execute(brute_request);
    ASSERT_TRUE(brute.ok) << brute.error;
    EXPECT_EQ(RecourseSignature(fast), RecourseSignature(brute))
        << "threads " << threads;

    // ...and identical at every thread count.
    if (reference.empty()) {
      reference = RecourseSignature(fast);
    } else {
      EXPECT_EQ(RecourseSignature(fast), reference)
          << "threads " << threads;
    }
  }
}

TEST(EngineRecourseTest, StatsChargeHistoryAgainstBudget) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kSAKT));
  // Pass 1, unlimited budget: measure what two students with real
  // histories actually occupy.
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  options.session_budget_bytes = 0;
  auto drive = [&](InferenceEngine& engine) {
    FeedPrefix(engine, ds.sequences[0], 9, "a");
    FeedPrefix(engine, ds.sequences[1], 9, "b");
  };
  size_t state_bytes = 0;
  size_t history_bytes = 0;
  {
    InferenceEngine engine(model, options);
    drive(engine);
    ServeRequest stats;
    stats.op = Op::kStats;
    const ServeResponse response = engine.Execute(stats);
    ASSERT_TRUE(response.ok);
    state_bytes = static_cast<size_t>(response.state_bytes);
    history_bytes = static_cast<size_t>(response.history_bytes);
    EXPECT_GT(state_bytes, 0u);
    EXPECT_GT(history_bytes, 0u);
    EXPECT_EQ(response.evictions, 0);
  }
  // Pass 2, regression: a budget that holds the neural state alone but
  // NOT state + history. The old accounting (neural only) never evicted
  // under this budget; charging history must.
  options.session_budget_bytes = state_bytes + history_bytes / 2;
  {
    InferenceEngine engine(model, options);
    drive(engine);
    ServeRequest stats;
    stats.op = Op::kStats;
    const ServeResponse response = engine.Execute(stats);
    ASSERT_TRUE(response.ok);
    EXPECT_GT(response.evictions, 0);
    EXPECT_GT(response.history_bytes, 0);
    // Evicted or not, predictions stay bit-identical (replay rebuild).
    ServeRequest predict;
    predict.op = Op::kPredict;
    predict.student = "a";
    predict.question = ds.sequences[0].interactions[9].question;
    predict.has_concepts = true;
    predict.concepts = ds.sequences[0].interactions[9].concepts;
    const ServeResponse online = engine.Execute(predict);
    ASSERT_TRUE(online.ok);
    data::Batch batch = rckt::MakePrefixBatch({{&ds.sequences[0], 9}});
    EXPECT_EQ(Bits(online.p), Bits(model.GeneratorScoreTargets(batch)[0]));
  }
}

// ---- KTW2 metadata chunk ----

TEST(ModelMetaTest, RoundTripsThroughSaveAndLoad) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kSAKT));
  const std::string path = ::testing::TempDir() + "/serve_meta.ktw";

  nn::ModelMeta meta;
  meta.encoder_kind = static_cast<int32_t>(rckt::EncoderKind::kSAKT);
  meta.dim = 16;
  meta.num_layers = 2;
  meta.num_heads = 2;
  meta.num_questions = ds.num_questions;
  meta.num_concepts = ds.num_concepts;
  ASSERT_TRUE(nn::SaveModuleWithMeta(model, meta, path).ok());

  bool present = false;
  nn::ModelMeta read;
  ASSERT_TRUE(nn::ReadModuleMeta(path, &present, &read).ok());
  ASSERT_TRUE(present);
  EXPECT_EQ(read.encoder_kind, meta.encoder_kind);
  EXPECT_EQ(read.dim, 16);
  EXPECT_EQ(read.num_layers, 2);
  EXPECT_EQ(read.num_heads, 2);
  EXPECT_EQ(read.num_questions, ds.num_questions);
  EXPECT_EQ(read.num_concepts, ds.num_concepts);

  // The weights still load (the chunk is skipped transparently) and
  // reproduce the source model bit for bit.
  rckt::RCKT loaded(ds.num_questions, ds.num_concepts,
                    SmallConfig(rckt::EncoderKind::kSAKT));
  ASSERT_TRUE(nn::LoadModule(loaded, path).ok());
  data::Batch batch = rckt::MakePrefixBatch({{&ds.sequences[0], 5}});
  const float a = model.GeneratorScoreTargets(batch)[0];
  const float b = loaded.GeneratorScoreTargets(batch)[0];
  EXPECT_EQ(Bits(a), Bits(b));
}

TEST(ModelMetaTest, PlainSavesReportNoMetadata) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts,
                   SmallConfig(rckt::EncoderKind::kDKT));
  const std::string path = ::testing::TempDir() + "/serve_plain.ktw";
  ASSERT_TRUE(nn::SaveModule(model, path).ok());

  bool present = true;
  nn::ModelMeta meta;
  ASSERT_TRUE(nn::ReadModuleMeta(path, &present, &meta).ok());
  EXPECT_FALSE(present);
  rckt::RCKT loaded(ds.num_questions, ds.num_concepts,
                    SmallConfig(rckt::EncoderKind::kDKT));
  EXPECT_TRUE(nn::LoadModule(loaded, path).ok());
}

}  // namespace
}  // namespace serve
}  // namespace kt
