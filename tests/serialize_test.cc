#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/binio.h"
#include "core/crc32.h"
#include "core/fileio.h"
#include "data/simulator.h"
#include "models/dkt.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"

namespace kt {
namespace nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::string bytes;
  KT_CHECK(ReadFileToString(path, &bytes).ok());
  return bytes;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Assembles a KTW2 file around an arbitrary payload with a VALID checksum,
// so crafted-payload tests exercise the parser rather than the CRC gate.
std::string MakeKtw2(const std::string& payload) {
  std::string file = "KTW2";
  AppendPod(&file, Crc32(payload.data(), payload.size()));
  file += payload;
  return file;
}

std::vector<Tensor> SnapshotParams(const Module& module) {
  std::vector<Tensor> snapshot;
  for (const auto& param : module.Parameters()) {
    snapshot.push_back(param.value().Clone());
  }
  return snapshot;
}

void ExpectParamsUntouched(const Module& module,
                           const std::vector<Tensor>& snapshot) {
  const auto params = module.Parameters();
  ASSERT_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor& now = params[i].value();
    ASSERT_TRUE(now.SameShape(snapshot[i]));
    EXPECT_EQ(std::memcmp(now.data(), snapshot[i].data(),
                          sizeof(float) * now.numel()),
              0)
        << "parameter " << i << " was modified by a failed load";
  }
}

TEST(SerializeTest, RoundTripsLinear) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // different init
  const std::string path = TempPath("linear.ktw");
  ASSERT_TRUE(SaveModule(a, path).ok());
  ASSERT_TRUE(LoadModule(b, path).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value().AllClose(pb[i].value()));
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileReturnsNotFound) {
  Rng rng(2);
  Linear m(2, 2, rng);
  const Status status = LoadModule(m, TempPath("does_not_exist.ktw"));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, RejectsWrongArchitecture) {
  Rng rng(3);
  Linear a(4, 3, rng);
  const std::string path = TempPath("arch.ktw");
  ASSERT_TRUE(SaveModule(a, path).ok());

  // Different shape: load must fail and leave the target untouched.
  Linear different(3, 4, rng);
  const Tensor before = different.Parameters()[0].value().Clone();
  const Status status = LoadModule(different, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(different.Parameters()[0].value().AllClose(before));
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsCorruptMagic) {
  const std::string path = TempPath("bad_magic.ktw");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE-not-a-checkpoint";
  }
  Rng rng(4);
  Linear m(2, 2, rng);
  EXPECT_EQ(LoadModule(m, path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsTruncatedFile) {
  Rng rng(5);
  Linear a(8, 8, rng);
  const std::string path = TempPath("truncated.ktw");
  ASSERT_TRUE(SaveModule(a, path).ok());
  // Truncate to half size.
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto size = in.tellg();
    std::vector<char> buffer(static_cast<size_t>(size) / 2);
    in.seekg(0);
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }
  Linear b(8, 8, rng);
  EXPECT_FALSE(LoadModule(b, path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption fuzz: every failure must be a clean Status (no crash, no
// over-allocation) and must leave the module bit-identical.
// ---------------------------------------------------------------------------

TEST(SerializeTest, RejectsTruncationAtEveryOffset) {
  Rng rng(11);
  Linear a(4, 3, rng);
  const std::string path = TempPath("fuzz_trunc.ktw");
  ASSERT_TRUE(SaveModule(a, path).ok());
  const std::string bytes = ReadAll(path);

  Linear b(4, 3, rng);
  const std::vector<Tensor> snapshot = SnapshotParams(b);
  const std::string cut = TempPath("fuzz_trunc_cut.ktw");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(cut, bytes.substr(0, len));
    EXPECT_FALSE(LoadModule(b, cut).ok()) << "prefix of " << len << " bytes";
    ExpectParamsUntouched(b, snapshot);
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(SerializeTest, RejectsFlippedByteAtEveryOffset) {
  Rng rng(12);
  Linear a(4, 3, rng);
  const std::string path = TempPath("fuzz_flip.ktw");
  ASSERT_TRUE(SaveModule(a, path).ok());
  const std::string bytes = ReadAll(path);

  Linear b(4, 3, rng);
  const std::vector<Tensor> snapshot = SnapshotParams(b);
  const std::string bad = TempPath("fuzz_flip_bad.ktw");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    WriteAll(bad, corrupt);
    EXPECT_FALSE(LoadModule(b, bad).ok()) << "flipped byte at offset " << i;
    ExpectParamsUntouched(b, snapshot);
  }
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

TEST(SerializeTest, RejectsTrailingBytes) {
  Rng rng(13);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);
  const std::vector<Tensor> snapshot = SnapshotParams(b);
  const std::string path = TempPath("fuzz_trailing.ktw");

  // Junk appended after the file is written trips the checksum gate.
  ASSERT_TRUE(SaveModule(a, path).ok());
  WriteAll(path, ReadAll(path) + "junk");
  EXPECT_FALSE(LoadModule(b, path).ok());
  ExpectParamsUntouched(b, snapshot);

  // Junk inside the checksummed payload reaches the parser's own
  // trailing-bytes check.
  std::string payload;
  AppendModuleState(a, &payload);
  payload += "junk";
  WriteAll(path, MakeKtw2(payload));
  const Status status = LoadModule(b, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("trailing bytes"), std::string::npos);
  ExpectParamsUntouched(b, snapshot);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsOversizedNameLenWithoutAllocating) {
  Rng rng(14);
  Linear m(4, 3, rng);
  const std::vector<Tensor> snapshot = SnapshotParams(m);

  // Payload claims the right parameter count but a ~2 GB name length. The
  // loader must reject on the length *comparison* — before any allocation.
  std::string payload;
  AppendPod(&payload, static_cast<uint64_t>(m.Parameters().size()));
  AppendPod(&payload, static_cast<uint32_t>(0x7FFFFFFF));
  const std::string path = TempPath("fuzz_name_len.ktw");
  WriteAll(path, MakeKtw2(payload));

  const Status status = LoadModule(m, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("name length mismatch"), std::string::npos);
  ExpectParamsUntouched(m, snapshot);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsOversizedRankWithoutAllocating) {
  Rng rng(15);
  Linear m(4, 3, rng);
  const std::vector<Tensor> snapshot = SnapshotParams(m);
  const std::string name = m.ParameterNames()[0];

  std::string payload;
  AppendPod(&payload, static_cast<uint64_t>(m.Parameters().size()));
  AppendPod(&payload, static_cast<uint32_t>(name.size()));
  AppendBytes(&payload, name.data(), name.size());
  AppendPod(&payload, static_cast<uint32_t>(1000000));  // hostile rank
  const std::string path = TempPath("fuzz_rank.ktw");
  WriteAll(path, MakeKtw2(payload));

  const Status status = LoadModule(m, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("implausible rank"), std::string::npos);
  ExpectParamsUntouched(m, snapshot);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadsLegacyKtw1Files) {
  Rng rng(16);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // different init

  std::string file = "KTW1";  // legacy layout: magic + payload, no checksum
  AppendModuleState(a, &file);
  const std::string path = TempPath("legacy.ktw");
  WriteAll(path, file);

  ASSERT_TRUE(LoadModule(b, path).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value().AllClose(pb[i].value()));
  }
  std::remove(path.c_str());
}

// SaveModule commits via tmp + rename; a crash at any byte offset of the new
// file must leave the previously saved weights loadable.
TEST(SerializeTest, InterruptedSaveLeavesPreviousFileLoadable) {
  Rng rng(17);
  Linear old_model(4, 3, rng);
  Linear new_model(4, 3, rng);  // different weights
  const std::string path = TempPath("atomic.ktw");
  ASSERT_TRUE(SaveModule(old_model, path).ok());

  const std::string staging = TempPath("atomic_staging.ktw");
  ASSERT_TRUE(SaveModule(new_model, staging).ok());
  const std::string new_bytes = ReadAll(staging);

  for (size_t len = 0; len < new_bytes.size(); len += 7) {
    WriteAll(path + ".tmp", new_bytes.substr(0, len));
    Linear loaded(4, 3, rng);
    ASSERT_TRUE(LoadModule(loaded, path).ok())
        << "interrupted at offset " << len;
    ExpectParamsUntouched(loaded, SnapshotParams(old_model));
  }
  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
  std::remove(staging.c_str());
}

TEST(SerializeTest, TrainedRcktPredictsIdenticallyAfterReload) {
  data::SimulatorConfig config;
  config.num_students = 30;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 10;
  config.max_responses = 20;
  config.seed = 6;
  data::StudentSimulator sim(config);
  data::Dataset ds = sim.Generate();

  rckt::RcktConfig rc;
  rc.dim = 16;
  rc.seed = 7;
  rckt::RCKT original(ds.num_questions, ds.num_concepts, rc);

  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    if (seq.length() > 8) samples.push_back({&seq, 8});
    if (samples.size() == 8) break;
  }
  data::Batch batch = rckt::MakePrefixBatch(samples);
  for (int step = 0; step < 4; ++step) original.TrainStep(batch);

  const std::string path = TempPath("rckt.ktw");
  ASSERT_TRUE(SaveModule(original, path).ok());

  rc.seed = 99;  // different init
  rckt::RCKT restored(ds.num_questions, ds.num_concepts, rc);
  ASSERT_TRUE(LoadModule(restored, path).ok());

  const auto original_scores = original.ScoreTargets(batch);
  const auto restored_scores = restored.ScoreTargets(batch);
  for (size_t i = 0; i < original_scores.size(); ++i) {
    EXPECT_FLOAT_EQ(original_scores[i], restored_scores[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace kt
