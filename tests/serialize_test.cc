#include "nn/serialize.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/simulator.h"
#include "models/dkt.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"

namespace kt {
namespace nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripsLinear) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // different init
  const std::string path = TempPath("linear.ktw");
  ASSERT_TRUE(SaveModule(a, path).ok());
  ASSERT_TRUE(LoadModule(b, path).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value().AllClose(pb[i].value()));
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileReturnsNotFound) {
  Rng rng(2);
  Linear m(2, 2, rng);
  const Status status = LoadModule(m, TempPath("does_not_exist.ktw"));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, RejectsWrongArchitecture) {
  Rng rng(3);
  Linear a(4, 3, rng);
  const std::string path = TempPath("arch.ktw");
  ASSERT_TRUE(SaveModule(a, path).ok());

  // Different shape: load must fail and leave the target untouched.
  Linear different(3, 4, rng);
  const Tensor before = different.Parameters()[0].value().Clone();
  const Status status = LoadModule(different, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(different.Parameters()[0].value().AllClose(before));
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsCorruptMagic) {
  const std::string path = TempPath("bad_magic.ktw");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE-not-a-checkpoint";
  }
  Rng rng(4);
  Linear m(2, 2, rng);
  EXPECT_EQ(LoadModule(m, path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsTruncatedFile) {
  Rng rng(5);
  Linear a(8, 8, rng);
  const std::string path = TempPath("truncated.ktw");
  ASSERT_TRUE(SaveModule(a, path).ok());
  // Truncate to half size.
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto size = in.tellg();
    std::vector<char> buffer(static_cast<size_t>(size) / 2);
    in.seekg(0);
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }
  Linear b(8, 8, rng);
  EXPECT_FALSE(LoadModule(b, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, TrainedRcktPredictsIdenticallyAfterReload) {
  data::SimulatorConfig config;
  config.num_students = 30;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 10;
  config.max_responses = 20;
  config.seed = 6;
  data::StudentSimulator sim(config);
  data::Dataset ds = sim.Generate();

  rckt::RcktConfig rc;
  rc.dim = 16;
  rc.seed = 7;
  rckt::RCKT original(ds.num_questions, ds.num_concepts, rc);

  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    if (seq.length() > 8) samples.push_back({&seq, 8});
    if (samples.size() == 8) break;
  }
  data::Batch batch = rckt::MakePrefixBatch(samples);
  for (int step = 0; step < 4; ++step) original.TrainStep(batch);

  const std::string path = TempPath("rckt.ktw");
  ASSERT_TRUE(SaveModule(original, path).ok());

  rc.seed = 99;  // different init
  rckt::RCKT restored(ds.num_questions, ds.num_concepts, rc);
  ASSERT_TRUE(LoadModule(restored, path).ok());

  const auto original_scores = original.ScoreTargets(batch);
  const auto restored_scores = restored.ScoreTargets(batch);
  for (size_t i = 0; i < original_scores.size(); ++i) {
    EXPECT_FLOAT_EQ(original_scores[i], restored_scores[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace kt
