// Tests for the extension modules: GRU / RCKT-GRU encoder, dataset CSV I/O,
// and the interpretability-quantification metrics.
#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/io.h"
#include "data/simulator.h"
#include "nn/gru.h"
#include "rckt/interpretability.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"

namespace kt {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---- GRU ----

TEST(GruTest, ShapeAndCausality) {
  Rng rng(1);
  nn::GRU gru(3, 5, rng);
  Tensor x = Tensor::Uniform({2, 4, 3}, -1, 1, rng);
  ag::Variable out = gru.Forward(ag::Constant(x));
  EXPECT_EQ(out.shape(), (Shape{2, 4, 5}));

  Tensor x2 = x.Clone();
  x2.at({0, 3, 0}) += 10.0f;
  ag::Variable out2 = gru.Forward(ag::Constant(x2));
  EXPECT_TRUE(
      out2.value().Slice(1, 0, 3).AllClose(out.value().Slice(1, 0, 3)));
  EXPECT_FALSE(
      out2.value().Slice(1, 3, 4).AllClose(out.value().Slice(1, 3, 4)));
}

TEST(GruTest, GradientsFlow) {
  Rng rng(2);
  nn::GRU gru(2, 3, rng);
  Tensor x = Tensor::Uniform({1, 5, 2}, -1, 1, rng);
  gru.ZeroGrad();
  ag::SumAll(gru.Forward(ag::Constant(x))).Backward();
  for (const auto& p : gru.Parameters()) {
    float norm = 0.0f;
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) norm += std::fabs(g.flat(i));
    EXPECT_GT(norm, 0.0f);
  }
}

TEST(GruEncoderTest, NoSelfLeakage) {
  Rng rng(3);
  auto encoder = rckt::MakeBiEncoder(rckt::EncoderKind::kGRU, 8, 2, 2, 0.0f,
                                     rng);
  Tensor a = Tensor::Uniform({1, 6, 8}, -1, 1, rng);
  nn::Context ctx;
  Tensor h1 = encoder->Encode(ag::Constant(a), ctx).value();
  Tensor a2 = a.Clone();
  for (int64_t d = 0; d < 8; ++d) a2.at({0, 3, d}) += 5.0f;
  Tensor h2 = encoder->Encode(ag::Constant(a2), ctx).value();
  for (int64_t d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(h1.at({0, 3, d}), h2.at({0, 3, d}));
  }
}

TEST(GruEncoderTest, RcktGruTrains) {
  data::SimulatorConfig config;
  config.num_students = 30;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 10;
  config.max_responses = 18;
  config.seed = 4;
  data::StudentSimulator sim(config);
  data::Dataset ds = sim.Generate();

  rckt::RcktConfig rc;
  rc.encoder = rckt::EncoderKind::kGRU;
  rc.dim = 16;
  rckt::RCKT model(ds.num_questions, ds.num_concepts, rc);
  EXPECT_EQ(model.name(), "RCKT-GRU");

  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    if (seq.length() > 8) samples.push_back({&seq, 8});
    if (samples.size() == 12) break;
  }
  data::Batch batch = rckt::MakePrefixBatch(samples);
  const float first = model.TrainStep(batch);
  float last = first;
  for (int step = 0; step < 10; ++step) last = model.TrainStep(batch);
  EXPECT_LT(last, first);
}

// ---- Dataset CSV I/O ----

TEST(DataIoTest, RoundTrip) {
  data::SimulatorConfig config;
  config.num_students = 12;
  config.num_questions = 20;
  config.num_concepts = 5;
  config.avg_concepts_per_question = 1.3;
  config.min_responses = 5;
  config.max_responses = 12;
  config.seed = 5;
  data::StudentSimulator sim(config);
  data::Dataset original = sim.Generate();

  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(data::SaveCsv(original, path).ok());
  auto loaded = data::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const data::Dataset& ds = loaded.value();
  ASSERT_EQ(ds.sequences.size(), original.sequences.size());
  EXPECT_EQ(ds.TotalResponses(), original.TotalResponses());
  for (size_t s = 0; s < ds.sequences.size(); ++s) {
    ASSERT_EQ(ds.sequences[s].length(), original.sequences[s].length());
    for (int64_t t = 0; t < ds.sequences[s].length(); ++t) {
      const auto& a = ds.sequences[s].interactions[static_cast<size_t>(t)];
      const auto& b =
          original.sequences[s].interactions[static_cast<size_t>(t)];
      EXPECT_EQ(a.question, b.question);
      EXPECT_EQ(a.response, b.response);
      EXPECT_EQ(a.concepts, b.concepts);
    }
  }
  std::remove(path.c_str());
}

TEST(DataIoTest, MissingFile) {
  auto result = data::LoadCsv(TempPath("nope.csv"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DataIoTest, RejectsBadHeaderAndMalformedLines) {
  const std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "wrong,header\n";
  }
  EXPECT_EQ(data::LoadCsv(path).status().code(),
            StatusCode::kInvalidArgument);

  {
    std::ofstream out(path);
    out << "student_id,question_id,correct,concept_ids\n";
    out << "1,2,5,0\n";  // correctness out of range
  }
  auto result = data::LoadCsv(path);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":2:"), std::string::npos);

  {
    std::ofstream out(path);
    out << "student_id,question_id,correct,concept_ids\n";
    out << "1,2,1,\n";  // empty concepts
  }
  EXPECT_FALSE(data::LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(DataIoTest, InterleavedStudentsGroupCorrectly) {
  const std::string path = TempPath("interleaved.csv");
  {
    std::ofstream out(path);
    out << "student_id,question_id,correct,concept_ids\n";
    out << "7,1,1,0\n";
    out << "9,2,0,1\n";
    out << "7,3,0,0;1\n";
  }
  auto result = data::LoadCsv(path);
  ASSERT_TRUE(result.ok());
  const data::Dataset& ds = result.value();
  ASSERT_EQ(ds.sequences.size(), 2u);
  EXPECT_EQ(ds.sequences[0].student, 7);
  EXPECT_EQ(ds.sequences[0].length(), 2);
  EXPECT_EQ(ds.sequences[0].interactions[1].concepts,
            (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(ds.num_questions, 4);
  EXPECT_EQ(ds.num_concepts, 2);
  std::remove(path.c_str());
}

// ---- Interpretability metrics ----

TEST(InterpretabilityTest, PearsonCorrelation) {
  EXPECT_NEAR(rckt::PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(rckt::PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
  EXPECT_NEAR(rckt::PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0, 1e-12);
}

TEST(InterpretabilityTest, DeletionFidelityRuns) {
  data::SimulatorConfig config;
  config.num_students = 40;
  config.num_questions = 30;
  config.num_concepts = 5;
  config.min_responses = 12;
  config.max_responses = 20;
  config.seed = 6;
  data::StudentSimulator sim(config);
  data::Dataset ds = sim.Generate();

  rckt::RcktConfig rc;
  rc.dim = 16;
  rckt::RCKT model(ds.num_questions, ds.num_concepts, rc);
  // Brief training so influences are non-degenerate.
  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    if (seq.length() > 10) samples.push_back({&seq, 10});
    if (samples.size() == 24) break;
  }
  data::Batch batch = rckt::MakePrefixBatch(samples);
  for (int step = 0; step < 8; ++step) model.TrainStep(batch);

  Rng rng(9);
  const auto result =
      rckt::DeletionFidelity(model, ds, /*k=*/3, /*max_samples=*/12, rng);
  EXPECT_GT(result.num_samples, 0);
  EXPECT_GE(result.targeted_shift, 0.0);
  EXPECT_GE(result.random_shift, 0.0);
  // Targeted deletion should move the score at least as much as random
  // (allow slack for an undertrained model).
  EXPECT_GT(result.fidelity_ratio, 0.5);
}

TEST(InterpretabilityTest, ProficiencyFidelityRuns) {
  data::SimulatorConfig config;
  config.num_students = 30;
  config.num_questions = 30;
  config.num_concepts = 4;
  config.min_responses = 12;
  config.max_responses = 20;
  config.seed = 7;
  data::StudentSimulator sim(config);
  data::Dataset ds = sim.Generate();

  rckt::RcktConfig rc;
  rc.dim = 16;
  rckt::RCKT model(ds.num_questions, ds.num_concepts, rc);
  const auto result =
      rckt::ProficiencyFidelity(model, sim, /*num_students=*/3,
                                /*sequence_length=*/15);
  EXPECT_EQ(result.num_students, 3);
  EXPECT_GE(result.mean_correlation, -1.0);
  EXPECT_LE(result.mean_correlation, 1.0);
}

}  // namespace
}  // namespace kt
