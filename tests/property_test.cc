// Property-based test sweeps (TEST_P) over randomized inputs, pinning
// invariants that single-example tests cannot: simulator dynamics, attention
// mask algebra, tensor round-trips, metric properties, and the RCKT decision
// rule.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/simulator.h"
#include "eval/metrics.h"
#include "nn/attention.h"
#include "rckt/counterfactual.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"
#include "tensor/tensor_ops.h"

namespace kt {
namespace {

// ---- Simulator invariants across seeds ----

class SimulatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorProperty, GeneratedDataIsStructurallyValid) {
  data::SimulatorConfig config;
  config.num_students = 25;
  config.num_questions = 30;
  config.num_concepts = 5;
  config.avg_concepts_per_question = 1.3;
  config.min_responses = 6;
  config.max_responses = 24;
  config.seed = static_cast<uint64_t>(100 + GetParam());
  data::StudentSimulator simulator(config);
  data::Dataset ds = simulator.Generate();

  ASSERT_EQ(ds.sequences.size(), 25u);
  for (const auto& seq : ds.sequences) {
    EXPECT_GE(seq.length(), 6);
    EXPECT_LE(seq.length(), 24);
    for (const auto& it : seq.interactions) {
      EXPECT_GE(it.question, 0);
      EXPECT_LT(it.question, 30);
      EXPECT_TRUE(it.response == 0 || it.response == 1);
      EXPECT_GE(it.concepts.size(), 1u);
      EXPECT_LE(it.concepts.size(), 2u);
      // Question-concept mapping is consistent with the bank.
      EXPECT_EQ(it.concepts,
                simulator.question_concepts()[static_cast<size_t>(
                    it.question)]);
    }
  }
  // Correct rate lands in a plausible band around the default target.
  EXPECT_GT(ds.CorrectRate(), 0.4);
  EXPECT_LT(ds.CorrectRate(), 0.9);
}

TEST_P(SimulatorProperty, PracticeOnConceptRaisesItsProficiency) {
  data::SimulatorConfig config;
  config.num_students = 4;
  config.num_questions = 20;
  config.num_concepts = 4;
  config.seed = static_cast<uint64_t>(200 + GetParam());
  config.concept_switch_prob = 0.05;  // long within-concept runs
  data::StudentSimulator simulator(config);
  data::SimulationTrace trace;
  data::ResponseSequence seq =
      simulator.GenerateStudent(30, static_cast<uint64_t>(GetParam()), &trace);

  // Whenever a concept is practiced, its proficiency does not decrease
  // (learning applies even on errors in our generative model).
  for (size_t t = 1; t < trace.proficiency.size(); ++t) {
    for (int64_t k : seq.interactions[t].concepts) {
      EXPECT_GE(trace.proficiency[t][static_cast<size_t>(k)],
                trace.proficiency[t - 1][static_cast<size_t>(k)] - 1e-9)
          << "practiced concept lost proficiency at t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperty, ::testing::Range(0, 6));

// ---- Attention mask algebra ----

class MaskProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(MaskProperty, CausalAndAnticausalPartitionNoSelf) {
  const int64_t t = GetParam();
  Tensor causal =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kCausalStrict);
  Tensor anti =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kAntiCausalInclusive);
  Tensor no_self =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kBidirectionalNoSelf);
  Tensor full = nn::MakeAttentionMask(t, nn::AttentionMaskKind::kFull);

  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      // strict-causal + anticausal-inclusive = full (they overlap nowhere).
      EXPECT_FLOAT_EQ(causal.at({i, j}) + anti.at({i, j}), full.at({i, j}));
      // no-self = full minus the diagonal.
      EXPECT_FLOAT_EQ(no_self.at({i, j}),
                      i == j ? 0.0f : full.at({i, j}));
    }
  }
}

TEST_P(MaskProperty, InclusiveCausalIsStrictPlusDiagonal) {
  const int64_t t = GetParam();
  Tensor strict =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kCausalStrict);
  Tensor inclusive =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kCausalInclusive);
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      EXPECT_FLOAT_EQ(inclusive.at({i, j}),
                      strict.at({i, j}) + (i == j ? 1.0f : 0.0f));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MaskProperty,
                         ::testing::Values<int64_t>(1, 2, 5, 9, 16));

// ---- Tensor round-trip properties ----

class TensorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TensorRoundTrip, SliceConcatIdentity) {
  Rng rng(static_cast<uint64_t>(300 + GetParam()));
  const int64_t a = 1 + rng.UniformInt(4);
  const int64_t b = 2 + rng.UniformInt(6);
  const int64_t c = 1 + rng.UniformInt(5);
  Tensor x = Tensor::Uniform({a, b, c}, -2, 2, rng);
  const int64_t cut = 1 + rng.UniformInt(b - 1);
  Tensor joined =
      Tensor::Concat({x.Slice(1, 0, cut), x.Slice(1, cut, b)}, 1);
  EXPECT_TRUE(joined.AllClose(x));
}

TEST_P(TensorRoundTrip, DoubleTransposeIdentity) {
  Rng rng(static_cast<uint64_t>(400 + GetParam()));
  const int64_t rows = 1 + rng.UniformInt(6);
  const int64_t cols = 1 + rng.UniformInt(6);
  Tensor x = Tensor::Uniform({3, rows, cols}, -2, 2, rng);
  EXPECT_TRUE(x.TransposeLast2().TransposeLast2().AllClose(x));
}

TEST_P(TensorRoundTrip, SoftmaxInvariantToRowShift) {
  Rng rng(static_cast<uint64_t>(500 + GetParam()));
  Tensor x = Tensor::Uniform({4, 6}, -3, 3, rng);
  Tensor shifted = AddScalar(x, static_cast<float>(rng.Uniform(-5, 5)));
  EXPECT_TRUE(SoftmaxLastDim(x).AllClose(SoftmaxLastDim(shifted), 1e-4f,
                                         1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorRoundTrip, ::testing::Range(0, 8));

// ---- AUC properties ----

class AucProperty : public ::testing::TestWithParam<int> {};

TEST_P(AucProperty, ComplementSymmetry) {
  Rng rng(static_cast<uint64_t>(600 + GetParam()));
  std::vector<float> scores;
  std::vector<int> labels, flipped;
  for (int i = 0; i < 300; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform()));
    labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);
    flipped.push_back(1 - labels.back());
  }
  // AUC(scores, 1-y) = 1 - AUC(scores, y).
  EXPECT_NEAR(eval::ComputeAuc(scores, flipped),
              1.0 - eval::ComputeAuc(scores, labels), 1e-9);
}

TEST_P(AucProperty, BoundedAndNegationSymmetric) {
  Rng rng(static_cast<uint64_t>(700 + GetParam()));
  std::vector<float> scores, negated;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform(-2, 2)));
    negated.push_back(-scores.back());
    labels.push_back(rng.Bernoulli(0.6) ? 1 : 0);
  }
  const double auc = eval::ComputeAuc(scores, labels);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
  EXPECT_NEAR(eval::ComputeAuc(negated, labels), 1.0 - auc, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucProperty, ::testing::Range(0, 6));

// ---- RCKT decision-rule invariants over random models/sequences ----

class RcktDecisionProperty : public ::testing::TestWithParam<int> {};

TEST_P(RcktDecisionProperty, ScoreSignMatchesExplanationPrediction) {
  data::SimulatorConfig config;
  config.num_students = 10;
  config.num_questions = 15;
  config.num_concepts = 3;
  config.min_responses = 8;
  config.max_responses = 14;
  config.seed = static_cast<uint64_t>(800 + GetParam());
  data::StudentSimulator simulator(config);
  data::Dataset ds = simulator.Generate();

  rckt::RcktConfig rc;
  rc.dim = 8;
  rc.seed = static_cast<uint64_t>(GetParam());
  rckt::RCKT model(ds.num_questions, ds.num_concepts, rc);

  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    samples.push_back({&seq, 7});
  }
  data::Batch batch = rckt::MakePrefixBatch(samples);
  const auto scores = model.ScoreTargets(batch);
  const auto explanations = model.ExplainTargets(batch);
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(scores[i] >= 0.5f, explanations[i].predicted_correct);
    // The explanation's influence array has exactly one entry per position.
    EXPECT_EQ(explanations[i].influence.size(), 8u);
    // Target position carries no influence.
    EXPECT_FLOAT_EQ(explanations[i].influence.back(), 0.0f);
  }
}

TEST_P(RcktDecisionProperty, MonotonicityVariantAgreesOnCategories) {
  // For an all-correct history, flipping the target to correct masks
  // nothing; the -mono and full constructions coincide on the CF+ side.
  Rng rng(static_cast<uint64_t>(900 + GetParam()));
  const int64_t n = 5 + rng.UniformInt(8);
  std::vector<int> responses(static_cast<size_t>(n), 1);
  auto with = rckt::BackwardCounterfactualCategories(responses, n - 1, 1, true);
  auto without =
      rckt::BackwardCounterfactualCategories(responses, n - 1, 1, false);
  EXPECT_EQ(with, without);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcktDecisionProperty, ::testing::Range(0, 5));

}  // namespace
}  // namespace kt
