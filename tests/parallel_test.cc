// Unit tests for the kt::parallel pool plus the determinism contract of
// everything built on it: GEMM, evaluation metrics, cross-validation, and
// RCKT response influences must be bit-identical for KT_NUM_THREADS in
// {1, 2, 8} and across repeated runs at 8 threads.
#include "core/parallel.h"

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/simulator.h"
#include "eval/trainer.h"
#include "models/dkt.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace kt {
namespace {

// Restores the ambient thread count when a test finishes.
class ThreadCountScope {
 public:
  explicit ThreadCountScope(int threads) : previous_(GetNumThreads()) {
    SetNumThreads(threads);
  }
  ~ThreadCountScope() { SetNumThreads(previous_); }

 private:
  int previous_;
};

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ThreadCountScope threads(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](int64_t) { ++calls; });
  ParallelFor(5, 5, 1, [&](int64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](int64_t) { ++calls; });  // inverted range
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadCountScope threads(8);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  for (auto& v : visits) v.store(0);
  ParallelFor(0, kN, 7, [&](int64_t i) { ++visits[static_cast<size_t>(i)]; });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  ThreadCountScope threads(8);
  std::vector<int> visits(10, 0);  // unsynchronized: single chunk => 1 thread
  ParallelFor(0, 10, 100, [&](int64_t i) { ++visits[static_cast<size_t>(i)]; });
  for (int value : visits) EXPECT_EQ(value, 1);
}

TEST(ParallelForTest, NonpositiveGrainIsClampedToOne) {
  ThreadCountScope threads(2);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 16, 0, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 120);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadCountScope threads(8);
  constexpr int64_t kOuter = 16, kInner = 32;
  std::vector<std::atomic<int>> cells(kOuter * kInner);
  for (auto& c : cells) c.store(0);
  ParallelFor(0, kOuter, 1, [&](int64_t o) {
    EXPECT_TRUE(InParallelRegion());
    ParallelFor(0, kInner, 1, [&](int64_t i) {
      ++cells[static_cast<size_t>(o * kInner + i)];
    });
  });
  EXPECT_FALSE(InParallelRegion());
  for (auto& c : cells) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadCountScope threads(8);
  EXPECT_THROW(ParallelFor(0, 64, 1,
                           [&](int64_t i) {
                             if (i == 13) {
                               throw std::runtime_error("boom");
                             }
                           }),
               std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> calls{0};
  ParallelFor(0, 8, 1, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ParallelForTest, SetNumThreadsClampsToOne) {
  ThreadCountScope restore(GetNumThreads());
  SetNumThreads(0);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(-3);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(5);
  EXPECT_EQ(GetNumThreads(), 5);
}

// ---- ParallelReduce determinism ----

// Float summation is order-sensitive, which makes it the sharpest probe of
// the fixed-chunk + ordered-combine contract: any scheduling dependence
// shows up as a bit difference.
float ChunkedSum(const std::vector<float>& values, int64_t grain) {
  return ParallelReduce<float>(
      0, static_cast<int64_t>(values.size()), grain, 0.0f,
      [&](int64_t lo, int64_t hi) {
        float partial = 0.0f;
        for (int64_t i = lo; i < hi; ++i)
          partial += values[static_cast<size_t>(i)];
        return partial;
      },
      [](float acc, float partial) { return acc + partial; });
}

TEST(ParallelReduceTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(21);
  std::vector<float> values(10007);
  for (auto& v : values) v = static_cast<float>(rng.Uniform(-10.0, 10.0));

  // Serial reference with the same fixed chunking.
  constexpr int64_t kGrain = 64;
  float reference = 0.0f;
  for (size_t lo = 0; lo < values.size(); lo += kGrain) {
    const size_t hi = std::min(values.size(), lo + kGrain);
    float partial = 0.0f;
    for (size_t i = lo; i < hi; ++i) partial += values[i];
    reference += partial;
  }

  for (int threads : {1, 2, 8}) {
    ThreadCountScope scope(threads);
    for (int run = 0; run < 3; ++run) {
      const float sum = ChunkedSum(values, kGrain);
      EXPECT_EQ(std::memcmp(&sum, &reference, sizeof(float)), 0)
          << "threads=" << threads << " run=" << run << " sum=" << sum
          << " reference=" << reference;
    }
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  ThreadCountScope threads(4);
  const float result = ParallelReduce<float>(
      3, 3, 8, 42.0f, [](int64_t, int64_t) { return 1.0f; },
      [](float a, float b) { return a + b; });
  EXPECT_FLOAT_EQ(result, 42.0f);
}

// ---- GEMM determinism across thread counts ----

TEST(ParallelDeterminismTest, GemmBitIdenticalAcrossThreadCounts) {
  Rng rng(33);
  const int64_t m = 96, k = 64, n = 80;  // above the parallel threshold
  Tensor a = Tensor::Uniform({m, k}, -1, 1, rng);
  Tensor b = Tensor::Uniform({k, n}, -1, 1, rng);

  Tensor reference;
  {
    ThreadCountScope scope(1);
    reference = Tensor({m, n});
    Gemm(a.data(), b.data(), reference.data(), m, k, n);
  }
  for (int threads : {1, 2, 8}) {
    ThreadCountScope scope(threads);
    for (int run = 0; run < 3; ++run) {
      Tensor c({m, n});
      Gemm(a.data(), b.data(), c.data(), m, k, n);
      EXPECT_EQ(std::memcmp(c.data(), reference.data(),
                            sizeof(float) * static_cast<size_t>(m * n)),
                0)
          << "threads=" << threads << " run=" << run;
    }
  }
}

// ---- Evaluate / cross-validation determinism ----

data::Dataset SmallDataset(uint64_t seed) {
  data::SimulatorConfig config;
  config.num_students = 60;
  config.num_questions = 30;
  config.num_concepts = 5;
  config.min_responses = 8;
  config.max_responses = 20;
  config.seed = seed;
  data::StudentSimulator sim(config);
  return sim.Generate();
}

// Fresh fixed-seed model each call so every thread count starts from
// identical weights.
eval::EvalResult EvaluateFreshDkt(const data::Dataset& ds) {
  models::NeuralConfig config;
  config.dim = 16;
  config.dropout = 0.0f;
  config.seed = 7;
  models::DKT model(ds.num_questions, ds.num_concepts, config);
  return eval::Evaluate(model, ds, /*batch_size=*/16);
}

TEST(ParallelDeterminismTest, EvaluateBitIdenticalAcrossThreadCounts) {
  data::Dataset ds = SmallDataset(19);
  eval::EvalResult reference;
  {
    ThreadCountScope scope(1);
    reference = EvaluateFreshDkt(ds);
  }
  EXPECT_GT(reference.num_predictions, 0);
  for (int threads : {1, 2, 8}) {
    ThreadCountScope scope(threads);
    for (int run = 0; run < 3; ++run) {
      const eval::EvalResult result = EvaluateFreshDkt(ds);
      // Exact double equality: the accumulation order is fixed by contract.
      EXPECT_EQ(result.auc, reference.auc)
          << "threads=" << threads << " run=" << run;
      EXPECT_EQ(result.acc, reference.acc)
          << "threads=" << threads << " run=" << run;
      EXPECT_EQ(result.num_predictions, reference.num_predictions);
    }
  }
}

TEST(ParallelDeterminismTest, CrossValidationBitIdenticalAcrossThreadCounts) {
  data::Dataset ds = SmallDataset(23);
  eval::TrainOptions options;
  options.max_epochs = 2;
  options.patience = 2;
  options.batch_size = 16;
  options.seed = 5;
  const eval::ModelFactory factory = [&](const data::Dataset& train) {
    models::NeuralConfig config;
    config.dim = 16;
    config.dropout = 0.0f;
    config.seed = 11;
    return std::make_unique<models::DKT>(train.num_questions,
                                         train.num_concepts, config);
  };

  eval::CrossValidationResult reference;
  {
    ThreadCountScope scope(1);
    reference = eval::RunCrossValidation(ds, 2, factory, options, 31);
  }
  for (int threads : {1, 8}) {
    ThreadCountScope scope(threads);
    const eval::CrossValidationResult result =
        eval::RunCrossValidation(ds, 2, factory, options, 31);
    ASSERT_EQ(result.fold_auc.size(), reference.fold_auc.size());
    for (size_t fold = 0; fold < reference.fold_auc.size(); ++fold) {
      EXPECT_EQ(result.fold_auc[fold], reference.fold_auc[fold])
          << "threads=" << threads << " fold=" << fold;
      EXPECT_EQ(result.fold_acc[fold], reference.fold_acc[fold])
          << "threads=" << threads << " fold=" << fold;
    }
    EXPECT_EQ(result.auc_mean, reference.auc_mean);
  }
}

// ---- RCKT response-influence determinism ----

TEST(ParallelDeterminismTest, ResponseInfluenceBitIdenticalAcrossThreadCounts) {
  data::Dataset ds = SmallDataset(29);
  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 16;
  config.num_layers = 1;
  config.dropout = 0.0f;
  config.seed = 4;

  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    if (seq.length() > 7) samples.push_back({&seq, 7});
    if (samples.size() == 6) break;
  }
  const data::Batch batch = rckt::MakePrefixBatch(samples);

  std::vector<float> ref_scores, ref_exact;
  std::vector<rckt::RCKT::Explanation> ref_explanations;
  {
    ThreadCountScope scope(1);
    rckt::RCKT model(ds.num_questions, ds.num_concepts, config);
    ref_scores = model.ScoreTargets(batch);
    ref_exact = model.ScoreTargetsExact(batch);
    ref_explanations = model.ExplainTargets(batch);
  }
  ASSERT_FALSE(ref_scores.empty());

  for (int threads : {1, 2, 8}) {
    ThreadCountScope scope(threads);
    rckt::RCKT model(ds.num_questions, ds.num_concepts, config);
    for (int run = 0; run < 3; ++run) {
      const auto scores = model.ScoreTargets(batch);
      const auto exact = model.ScoreTargetsExact(batch);
      const auto explanations = model.ExplainTargets(batch);
      ASSERT_EQ(scores.size(), ref_scores.size());
      for (size_t i = 0; i < scores.size(); ++i) {
        EXPECT_EQ(scores[i], ref_scores[i])
            << "threads=" << threads << " run=" << run << " row=" << i;
        EXPECT_EQ(exact[i], ref_exact[i])
            << "threads=" << threads << " run=" << run << " row=" << i;
        ASSERT_EQ(explanations[i].influence.size(),
                  ref_explanations[i].influence.size());
        for (size_t t = 0; t < explanations[i].influence.size(); ++t) {
          EXPECT_EQ(explanations[i].influence[t],
                    ref_explanations[i].influence[t])
              << "threads=" << threads << " row=" << i << " t=" << t;
        }
      }
    }
  }
}

// Training must also be scheduling-independent: identical weights after N
// steps for every thread count (the counterfactual fan-out builds the loss
// graph concurrently).
TEST(ParallelDeterminismTest, TrainStepBitIdenticalAcrossThreadCounts) {
  data::Dataset ds = SmallDataset(37);
  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 16;
  config.num_layers = 1;
  config.dropout = 0.0f;
  config.seed = 9;

  std::vector<rckt::PrefixSample> samples;
  for (const auto& seq : ds.sequences) {
    if (seq.length() > 7) samples.push_back({&seq, 7});
    if (samples.size() == 8) break;
  }
  const data::Batch batch = rckt::MakePrefixBatch(samples);

  std::vector<float> reference_losses;
  std::vector<float> reference_scores;
  {
    ThreadCountScope scope(1);
    rckt::RCKT model(ds.num_questions, ds.num_concepts, config);
    for (int step = 0; step < 3; ++step) {
      reference_losses.push_back(model.TrainStep(batch));
    }
    reference_scores = model.ScoreTargets(batch);
  }
  for (int threads : {2, 8}) {
    ThreadCountScope scope(threads);
    rckt::RCKT model(ds.num_questions, ds.num_concepts, config);
    for (int step = 0; step < 3; ++step) {
      EXPECT_EQ(model.TrainStep(batch),
                reference_losses[static_cast<size_t>(step)])
          << "threads=" << threads << " step=" << step;
    }
    const auto scores = model.ScoreTargets(batch);
    for (size_t i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], reference_scores[i]) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace kt
