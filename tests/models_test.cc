#include <memory>

#include <gtest/gtest.h>

#include "data/batch.h"
#include "data/simulator.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/akt.h"
#include "models/difficulty.h"
#include "models/dimkt.h"
#include "models/dkt.h"
#include "models/ikt.h"
#include "models/qikt.h"
#include "models/sakt.h"

namespace kt {
namespace models {
namespace {

data::SimulatorConfig TinyConfig() {
  data::SimulatorConfig config;
  config.num_students = 60;
  config.num_questions = 50;
  config.num_concepts = 6;
  config.min_responses = 12;
  config.max_responses = 30;
  config.seed = 8;
  return config;
}

NeuralConfig SmallNeural() {
  NeuralConfig config;
  config.dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.lr = 3e-3f;
  return config;
}

data::Batch FirstBatch(const data::Dataset& ds, int64_t batch_size = 8) {
  std::vector<const data::ResponseSequence*> members;
  for (int64_t i = 0;
       i < batch_size && i < static_cast<int64_t>(ds.sequences.size()); ++i) {
    members.push_back(&ds.sequences[static_cast<size_t>(i)]);
  }
  return data::MakeBatch(members);
}

// A factory covering every neural baseline, for parameterized suites.
enum class BaselineKind { kDKT, kSAKT, kAKT, kDIMKT, kQIKT };

std::unique_ptr<KTModel> MakeBaseline(BaselineKind kind,
                                      const data::Dataset& train) {
  const NeuralConfig config = SmallNeural();
  switch (kind) {
    case BaselineKind::kDKT:
      return std::make_unique<DKT>(train.num_questions, train.num_concepts,
                                   config);
    case BaselineKind::kSAKT:
      return std::make_unique<SAKT>(train.num_questions, train.num_concepts,
                                    config);
    case BaselineKind::kAKT:
      return std::make_unique<AKT>(train.num_questions, train.num_concepts,
                                   config);
    case BaselineKind::kDIMKT:
      return std::make_unique<DIMKT>(
          train.num_questions, train.num_concepts,
          ComputeDifficulty(train, train.num_questions), config);
    case BaselineKind::kQIKT:
      return std::make_unique<QIKT>(train.num_questions, train.num_concepts,
                                    config);
  }
  return nullptr;
}

TEST(EvalMaskTest, ExcludesPositionZeroAndPadding) {
  data::ResponseSequence a;
  a.interactions = {{1, 1, {0}}, {2, 0, {1}}};
  data::ResponseSequence b;
  b.interactions = {{3, 1, {0}}, {4, 1, {0}}, {5, 0, {1}}};
  data::Batch batch = data::MakeBatch({&a, &b});
  Tensor mask = EvalMask(batch);
  EXPECT_FLOAT_EQ(mask.flat(batch.FlatIndex(0, 0)), 0.0f);
  EXPECT_FLOAT_EQ(mask.flat(batch.FlatIndex(0, 1)), 1.0f);
  EXPECT_FLOAT_EQ(mask.flat(batch.FlatIndex(0, 2)), 0.0f);  // padding
  EXPECT_FLOAT_EQ(mask.flat(batch.FlatIndex(1, 2)), 1.0f);
}

class BaselineSuite : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineSuite, PredictsProbabilitiesInRange) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  auto model = MakeBaseline(GetParam(), ds);
  data::Batch batch = FirstBatch(ds);
  Tensor probs = model->PredictBatch(batch);
  EXPECT_EQ(probs.shape(), (Shape{batch.batch_size, batch.max_len}));
  for (int64_t i = 0; i < probs.numel(); ++i) {
    EXPECT_GE(probs.flat(i), 0.0f);
    EXPECT_LE(probs.flat(i), 1.0f);
  }
}

TEST_P(BaselineSuite, TrainingReducesLoss) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  auto model = MakeBaseline(GetParam(), ds);
  data::Batch batch = FirstBatch(ds, 16);
  const float first = model->TrainBatch(batch);
  float last = first;
  for (int step = 0; step < 15; ++step) last = model->TrainBatch(batch);
  EXPECT_LT(last, first);
}

TEST_P(BaselineSuite, PredictionIsDeterministicAtInference) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  auto model = MakeBaseline(GetParam(), ds);
  data::Batch batch = FirstBatch(ds);
  Tensor p1 = model->PredictBatch(batch);
  Tensor p2 = model->PredictBatch(batch);
  EXPECT_TRUE(p1.AllClose(p2));
}

TEST_P(BaselineSuite, BeatsChanceAfterShortTraining) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  Rng rng(17);
  const auto folds =
      data::KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(ds, folds, 0, 0.1, rng);

  auto model = MakeBaseline(GetParam(), split.train);
  eval::TrainOptions options;
  options.max_epochs = 14;
  options.patience = 14;
  options.batch_size = 16;
  eval::TrainResult result = eval::TrainAndEvaluate(*model, split, options);
  EXPECT_GT(result.test.auc, 0.55) << "model failed to learn";
  EXPECT_GT(result.test.num_predictions, 0);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineSuite,
                         ::testing::Values(BaselineKind::kDKT,
                                           BaselineKind::kSAKT,
                                           BaselineKind::kAKT,
                                           BaselineKind::kDIMKT,
                                           BaselineKind::kQIKT),
                         [](const auto& info) {
                           switch (info.param) {
                             case BaselineKind::kDKT: return "DKT";
                             case BaselineKind::kSAKT: return "SAKT";
                             case BaselineKind::kAKT: return "AKT";
                             case BaselineKind::kDIMKT: return "DIMKT";
                             case BaselineKind::kQIKT: return "QIKT";
                           }
                           return "unknown";
                         });

TEST(DifficultyTest, RatesAndLevels) {
  data::Dataset train;
  train.num_questions = 3;
  train.num_concepts = 1;
  data::ResponseSequence seq;
  // Question 0 always correct (easy), question 1 always wrong (hard).
  for (int i = 0; i < 20; ++i) {
    seq.interactions.push_back({0, 1, {0}});
    seq.interactions.push_back({1, 0, {0}});
  }
  train.sequences.push_back(seq);
  DifficultyTable table = ComputeDifficulty(train, 3, /*num_levels=*/10);
  EXPECT_GT(table.correct_rate[0], 0.8);
  EXPECT_LT(table.correct_rate[1], 0.2);
  // Unseen question 2 falls back to the global rate (0.5 here).
  EXPECT_NEAR(table.correct_rate[2], 0.5, 1e-6);
  EXPECT_GT(table.level[0], table.level[1]);
}

TEST(QiktTest, ExposesIrtTerms) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  QIKT model(ds.num_questions, ds.num_concepts, SmallNeural());
  data::Batch batch = FirstBatch(ds);
  model.PredictBatch(batch);
  const auto& terms = model.last_terms();
  EXPECT_EQ(terms.mastery.shape(), (Shape{batch.batch_size, batch.max_len}));
  // Discrimination is positive by construction (softplus).
  for (int64_t i = 0; i < terms.discrimination.numel(); ++i) {
    EXPECT_GT(terms.discrimination.flat(i), 0.0f);
  }
}

TEST(SaktTest, CapturesAttentionMaps) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  SAKT model(ds.num_questions, ds.num_concepts, SmallNeural());
  model.set_capture_attention(true);
  data::Batch batch = FirstBatch(ds, 2);
  model.PredictBatch(batch);
  const Tensor& attention = model.last_attention();
  EXPECT_EQ(attention.shape(),
            (Shape{batch.batch_size, batch.max_len, batch.max_len}));
  // Strict causal: upper triangle including the diagonal is zero.
  for (int64_t i = 0; i < batch.max_len; ++i) {
    for (int64_t j = i; j < batch.max_len; ++j) {
      EXPECT_FLOAT_EQ(attention.at({0, i, j}), 0.0f);
    }
  }
}

TEST(IktTest, FitLearnsTanStructureAndPredicts) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  IKT model(ds.num_questions, IktConfig{});
  EXPECT_FALSE(model.SupportsBatchTraining());
  model.Fit(ds);
  // Each non-root feature has the root or another feature as parent.
  int with_parent = 0;
  for (int f = 0; f < IKT::kNumFeatures; ++f) {
    if (model.parents()[static_cast<size_t>(f)] >= 0) ++with_parent;
  }
  EXPECT_EQ(with_parent, IKT::kNumFeatures - 1);

  data::Batch batch = FirstBatch(ds);
  Tensor probs = model.PredictBatch(batch);
  for (int64_t i = 0; i < probs.numel(); ++i) {
    EXPECT_GE(probs.flat(i), 0.0f);
    EXPECT_LE(probs.flat(i), 1.0f);
  }
}

TEST(IktTest, BeatsChance) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  Rng rng(23);
  const auto folds =
      data::KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(ds, folds, 0, 0.1, rng);
  IKT model(ds.num_questions, IktConfig{});
  eval::TrainOptions options;
  eval::TrainResult result = eval::TrainAndEvaluate(model, split, options);
  EXPECT_GT(result.test.auc, 0.55);
}

TEST(IktTest, PredictBeforeFitDies) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  IKT model(ds.num_questions, IktConfig{});
  data::Batch batch = FirstBatch(ds);
  EXPECT_DEATH(model.PredictBatch(batch), "Fit");
}

}  // namespace
}  // namespace models
}  // namespace kt
