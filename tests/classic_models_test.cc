// Tests for the classic (non-deep) knowledge-tracing models: BKT, PFA, KTM.
#include <gtest/gtest.h>

#include "data/simulator.h"
#include "eval/trainer.h"
#include "models/bkt.h"
#include "models/ktm.h"
#include "models/pfa.h"

namespace kt {
namespace models {
namespace {

data::SimulatorConfig TinyConfig() {
  data::SimulatorConfig config;
  config.num_students = 80;
  config.num_questions = 40;
  config.num_concepts = 6;
  config.min_responses = 12;
  config.max_responses = 30;
  config.seed = 21;
  return config;
}

data::Batch FirstBatch(const data::Dataset& ds, int64_t n = 8) {
  std::vector<const data::ResponseSequence*> members;
  for (int64_t i = 0; i < n; ++i)
    members.push_back(&ds.sequences[static_cast<size_t>(i)]);
  return data::MakeBatch(members);
}

// ---- BKT ----

TEST(BktTest, FitRecoversGenerativeStructure) {
  // Hand-built data: concept 0 starts unmastered, is learned quickly, and
  // afterwards answered correctly -> fitted p_learn should be well above
  // the floor and p_init low-ish.
  data::Dataset train;
  train.num_questions = 1;
  train.num_concepts = 1;
  Rng rng(5);
  for (int s = 0; s < 60; ++s) {
    data::ResponseSequence seq;
    bool mastered = false;
    for (int t = 0; t < 15; ++t) {
      if (!mastered && rng.Bernoulli(0.3)) mastered = true;
      const bool correct =
          mastered ? !rng.Bernoulli(0.05) : rng.Bernoulli(0.15);
      seq.interactions.push_back({0, correct ? 1 : 0, {0}});
    }
    train.sequences.push_back(seq);
  }
  BKT model(1, BktConfig{});
  model.Fit(train);
  const auto& p = model.params(0);
  EXPECT_LT(p.p_init, 0.5);
  EXPECT_GT(p.p_learn, 0.1);
  EXPECT_LT(p.p_guess, 0.4);
  EXPECT_LT(p.p_slip, 0.3);
}

TEST(BktTest, MasteryUpdateDirections) {
  BKT::ConceptParams p;
  p.p_guess = 0.2;
  p.p_slip = 0.1;
  // Correct evidence raises p(correct); more mastery -> higher probability.
  EXPECT_GT(BKT::CorrectProbability(p, 0.9), BKT::CorrectProbability(p, 0.1));
  EXPECT_NEAR(BKT::CorrectProbability(p, 0.0), 0.2, 1e-12);
  EXPECT_NEAR(BKT::CorrectProbability(p, 1.0), 0.9, 1e-12);
}

TEST(BktTest, PredictionsInRangeAndAdaptive) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  BKT model(ds.num_concepts, BktConfig{});
  model.Fit(ds);
  data::Batch batch = FirstBatch(ds);
  Tensor probs = model.PredictBatch(batch);
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    for (int64_t t = 0; t < batch.lengths[static_cast<size_t>(b)]; ++t) {
      const float p = probs.flat(batch.FlatIndex(b, t));
      EXPECT_GT(p, 0.0f);
      EXPECT_LT(p, 1.0f);
    }
  }
}

TEST(BktTest, BeatsChance) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  Rng rng(31);
  const auto folds =
      data::KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(ds, folds, 0, 0.1, rng);
  BKT model(ds.num_concepts, BktConfig{});
  eval::TrainOptions options;
  const auto result = eval::TrainAndEvaluate(model, split, options);
  EXPECT_GT(result.test.auc, 0.55);
}

// ---- PFA ----

TEST(PfaTest, LearnsSuccessHelpsFailureHurts) {
  // Synthetic data where prior successes strongly predict correctness.
  data::Dataset train;
  train.num_questions = 1;
  train.num_concepts = 1;
  Rng rng(7);
  for (int s = 0; s < 80; ++s) {
    data::ResponseSequence seq;
    int wins = 0;
    for (int t = 0; t < 12; ++t) {
      const double p = 0.25 + 0.12 * std::min(wins, 5);
      const bool correct = rng.Bernoulli(p);
      seq.interactions.push_back({0, correct ? 1 : 0, {0}});
      if (correct) ++wins;
    }
    train.sequences.push_back(seq);
  }
  PFA model(1, PfaConfig{});
  model.Fit(train);
  EXPECT_GT(model.weights(0).gamma, 0.0);           // successes help
  EXPECT_GT(model.weights(0).gamma, model.weights(0).rho);
}

TEST(PfaTest, BeatsChance) {
  data::SimulatorConfig config = TinyConfig();
  config.num_students = 200;  // count-based features need more folds' worth
  data::StudentSimulator sim(config);
  data::Dataset ds = sim.Generate();
  Rng rng(33);
  const auto folds =
      data::KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(ds, folds, 0, 0.1, rng);
  PFA model(ds.num_concepts, PfaConfig{});
  eval::TrainOptions options;
  const auto result = eval::TrainAndEvaluate(model, split, options);
  EXPECT_GT(result.test.auc, 0.55);
}

TEST(PfaTest, PredictBeforeFitDies) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  PFA model(ds.num_concepts, PfaConfig{});
  data::Batch batch = FirstBatch(ds);
  EXPECT_DEATH(model.PredictBatch(batch), "Fit");
}

// ---- KTM ----

TEST(KtmTest, ParameterCountMatchesLayout) {
  KtmConfig config;
  config.factor_dim = 4;
  KTM model(10, 3, config);
  // features = 10 questions + 3*3 concept blocks = 19; params = 1 + 19*(1+4).
  EXPECT_EQ(model.NumParameters(), 1 + 19 * 5);
}

TEST(KtmTest, BeatsChance) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  Rng rng(35);
  const auto folds =
      data::KFoldAssignment(static_cast<int64_t>(ds.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(ds, folds, 0, 0.1, rng);
  KTM model(ds.num_questions, ds.num_concepts, KtmConfig{});
  eval::TrainOptions options;
  const auto result = eval::TrainAndEvaluate(model, split, options);
  EXPECT_GT(result.test.auc, 0.55);
}

TEST(KtmTest, DeterministicForSeed) {
  data::StudentSimulator sim(TinyConfig());
  data::Dataset ds = sim.Generate();
  KtmConfig config;
  config.epochs = 3;
  KTM a(ds.num_questions, ds.num_concepts, config);
  KTM b(ds.num_questions, ds.num_concepts, config);
  a.Fit(ds);
  b.Fit(ds);
  data::Batch batch = FirstBatch(ds, 4);
  EXPECT_TRUE(a.PredictBatch(batch).AllClose(b.PredictBatch(batch)));
}

}  // namespace
}  // namespace models
}  // namespace kt
