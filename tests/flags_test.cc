#include "core/flags.h"

#include <gtest/gtest.h>

namespace kt {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(parser.Parse(static_cast<int>(args.size()), args.data()).ok());
  return parser;
}

TEST(FlagParserTest, KeyValueForms) {
  FlagParser flags = Parse({"--alpha", "3", "--beta=hello", "--gamma"});
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetString("beta", ""), "hello");
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_FALSE(flags.Has("delta"));
}

TEST(FlagParserTest, Fallbacks) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = Parse({"train", "--lr", "0.1", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "train");
  EXPECT_EQ(flags.positional()[1], "extra");
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.1);
}

TEST(FlagParserTest, BooleanBeforeAnotherFlag) {
  FlagParser flags = Parse({"--verbose", "--lr", "0.2"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.2);
}

TEST(FlagParserTest, ExplicitBooleanValues) {
  FlagParser flags = Parse({"--a=false", "--b", "true", "--c=1", "--d=0"});
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagParserTest, MalformedValuesDie) {
  FlagParser flags = Parse({"--n=abc", "--x=1.2.3", "--flag=maybe"});
  EXPECT_DEATH(flags.GetInt("n", 0), "expects an integer");
  EXPECT_DEATH(flags.GetDouble("x", 0.0), "expects a number");
  EXPECT_DEATH(flags.GetBool("flag", false), "true/false");
}

// Regression: "--key=" parses as an empty value; strtoll/strtod consume
// nothing, leave *end == '\0' at the start pointer, and a terminator-only
// check silently accepted the flag as 0. An empty value must die like any
// other malformed value.
TEST(FlagParserTest, EmptyValuesDie) {
  FlagParser flags = Parse({"--checkpoint-every=", "--lr="});
  EXPECT_DEATH(flags.GetInt("checkpoint-every", 7), "expects an integer");
  EXPECT_DEATH(flags.GetDouble("lr", 0.5), "expects a number");
  // The empty string is still a legal *string* value.
  EXPECT_EQ(flags.GetString("checkpoint-every", "x"), "");
}

// Regression: out-of-range values used to be silently clamped by strtoll /
// strtod (LLONG_MAX / HUGE_VAL with errno == ERANGE), so e.g.
// "--threads 99999999999999999999" sailed through as a huge-but-valid int.
TEST(FlagParserTest, OutOfRangeValuesDie) {
  FlagParser flags = Parse({"--threads=99999999999999999999",
                            "--neg=-99999999999999999999", "--x=1e999",
                            "--tiny=1e-999"});
  EXPECT_DEATH(flags.GetInt("threads", 1), "out of range");
  EXPECT_DEATH(flags.GetInt("neg", 1), "out of range");
  EXPECT_DEATH(flags.GetDouble("x", 0.0), "out of range");
  // Underflow also sets ERANGE: strtod returns a denormal-or-zero best
  // effort, which is not the number the user wrote.
  EXPECT_DEATH(flags.GetDouble("tiny", 0.0), "out of range");
}

TEST(FlagParserTest, ExtremeInRangeValuesParse) {
  FlagParser flags = Parse({"--max=9223372036854775807",
                            "--min=-9223372036854775808", "--big=1e300"});
  EXPECT_EQ(flags.GetInt("max", 0), INT64_MAX);
  EXPECT_EQ(flags.GetInt("min", 0), INT64_MIN);
  EXPECT_DOUBLE_EQ(flags.GetDouble("big", 0.0), 1e300);
}

TEST(CommonFlagsTest, ObservabilityFlagsParse) {
  FlagParser flags =
      Parse({"--obs", "--trace-out=/tmp/t.json", "--run-log", "/tmp/r.jsonl"});
  const CommonFlagValues values = ApplyCommonFlags(flags);
  EXPECT_TRUE(values.obs_enabled);
  EXPECT_EQ(values.trace_path, "/tmp/t.json");
  EXPECT_EQ(values.run_log_path, "/tmp/r.jsonl");
}

TEST(CommonFlagsTest, ObsDefaultsOffAndRejectsGarbage) {
  EXPECT_FALSE(ApplyCommonFlags(Parse({})).obs_enabled);
  EXPECT_FALSE(ApplyCommonFlags(Parse({"--obs=off"})).obs_enabled);
  EXPECT_TRUE(ApplyCommonFlags(Parse({"--obs=on"})).obs_enabled);
  FlagParser garbage = Parse({"--obs=sideways"});
  EXPECT_DEATH(ApplyCommonFlags(garbage), "expects on/off");
}

TEST(FlagParserTest, BareDashesRejected) {
  FlagParser parser;
  const char* args[] = {"prog", "--"};
  EXPECT_FALSE(parser.Parse(2, args).ok());
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags = Parse({"--lr=0.1", "--lr=0.2"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.2);
}

}  // namespace
}  // namespace kt
