#include "core/flags.h"

#include <gtest/gtest.h>

namespace kt {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(parser.Parse(static_cast<int>(args.size()), args.data()).ok());
  return parser;
}

TEST(FlagParserTest, KeyValueForms) {
  FlagParser flags = Parse({"--alpha", "3", "--beta=hello", "--gamma"});
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetString("beta", ""), "hello");
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_FALSE(flags.Has("delta"));
}

TEST(FlagParserTest, Fallbacks) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = Parse({"train", "--lr", "0.1", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "train");
  EXPECT_EQ(flags.positional()[1], "extra");
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.1);
}

TEST(FlagParserTest, BooleanBeforeAnotherFlag) {
  FlagParser flags = Parse({"--verbose", "--lr", "0.2"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.2);
}

TEST(FlagParserTest, ExplicitBooleanValues) {
  FlagParser flags = Parse({"--a=false", "--b", "true", "--c=1", "--d=0"});
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagParserTest, MalformedValuesDie) {
  FlagParser flags = Parse({"--n=abc", "--x=1.2.3", "--flag=maybe"});
  EXPECT_DEATH(flags.GetInt("n", 0), "expects an integer");
  EXPECT_DEATH(flags.GetDouble("x", 0.0), "expects a number");
  EXPECT_DEATH(flags.GetBool("flag", false), "true/false");
}

TEST(FlagParserTest, BareDashesRejected) {
  FlagParser parser;
  const char* args[] = {"prog", "--"};
  EXPECT_FALSE(parser.Parse(2, args).ok());
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags = Parse({"--lr=0.1", "--lr=0.2"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.2);
}

}  // namespace
}  // namespace kt
