#!/usr/bin/env bash
# Builds the test suite with AddressSanitizer + UndefinedBehaviorSanitizer
# and runs the serialization and checkpoint suites — the code paths that
# parse attacker-shaped bytes (corrupt/truncated checkpoint files) and so
# must be free of out-of-bounds reads, overflow, and leaks on every error
# path. Any ASan/UBSan report fails the script.
#
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"

# O1 keeps stack frames honest for ASan reports. No -march=native: the
# default build is portable codegen (see KT_NATIVE in CMakeLists.txt), so
# determinism-sensitive tests (kill/resume bit-identity) see the same FP
# instruction selection here as in the normal build.
cmake -B "${BUILD_DIR}" -S . \
  -DKT_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS_DEBUG="-O1 -g" >/dev/null
cmake --build "${BUILD_DIR}" --target kt_tests -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

"${BUILD_DIR}/tests/kt_tests" \
  --gtest_filter='Serialize*:CkptFormat*:TrainingState*:CkptResume*' \
  --gtest_brief=1

echo "ASan/UBSan check passed"
