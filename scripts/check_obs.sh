#!/usr/bin/env bash
# End-to-end check of the kt::obs observability layer:
#
#   1. Runs a short ktcli training with tracing + run log + checkpointing
#      enabled and validates both artifacts with tools/obs_check (Chrome
#      trace-event schema, per-epoch JSONL schema).
#   2. Re-runs the identical config with observability off and asserts the
#      reported metrics, the saved model bytes, and the final checkpoint are
#      bit-identical — telemetry must never touch the computation.
#   3. Repeats the A/B at several thread counts (the sharded counters and
#      per-thread trace tracks are only interesting under kt::parallel).
#
# Usage: scripts/check_obs.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" --target ktcli obs_check -j "$(nproc)" >/dev/null

KTCLI="${BUILD_DIR}/tools/ktcli"
OBS_CHECK="${BUILD_DIR}/tools/obs_check"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

"${KTCLI}" simulate --preset assist09 --scale 0.05 --seed 7 \
  --out "${WORK}/data.csv" >/dev/null

TRAIN_FLAGS=(train --data "${WORK}/data.csv" --encoder dkt
  --epochs 3 --patience 3 --seed 1 --verbose=false)

for THREADS in 1 2 8; do
  echo "== threads=${THREADS}"

  # Telemetry on: trace + run log + checkpoint + stderr summary.
  "${KTCLI}" "${TRAIN_FLAGS[@]}" --threads "${THREADS}" \
    --obs on \
    --trace-out "${WORK}/trace.json" \
    --run-log "${WORK}/run.jsonl" \
    --checkpoint-every 1 --checkpoint "${WORK}/on.ktc" \
    --save "${WORK}/on.ktw" \
    >"${WORK}/on.out" 2>"${WORK}/on.err"

  grep -q "kt::obs summary" "${WORK}/on.err" \
    || { echo "FAIL: --obs on printed no summary"; exit 1; }
  grep -q "counter gemm.calls" "${WORK}/on.err" \
    || { echo "FAIL: summary lacks gemm counters"; exit 1; }
  "${OBS_CHECK}" trace "${WORK}/trace.json"
  "${OBS_CHECK}" runlog "${WORK}/run.jsonl"
  EPOCHS=$(wc -l < "${WORK}/run.jsonl")
  [ "${EPOCHS}" -ge 1 ] || { echo "FAIL: empty run log"; exit 1; }

  # Telemetry off (the default): identical metrics, model, checkpoint.
  "${KTCLI}" "${TRAIN_FLAGS[@]}" --threads "${THREADS}" \
    --checkpoint-every 1 --checkpoint "${WORK}/off.ktc" \
    --save "${WORK}/off.ktw" \
    >"${WORK}/off.out" 2>/dev/null

  # Compare everything the runs print except the lines that echo their own
  # output paths (metrics, epoch counts, prediction counts must match).
  grep -v "saved model to" "${WORK}/on.out" >"${WORK}/on.cmp"
  grep -v "saved model to" "${WORK}/off.out" >"${WORK}/off.cmp"
  if ! diff -q "${WORK}/on.cmp" "${WORK}/off.cmp" >/dev/null; then
    echo "FAIL: training metrics differ with observability on vs off"
    diff "${WORK}/on.cmp" "${WORK}/off.cmp" || true
    exit 1
  fi
  cmp -s "${WORK}/on.ktw" "${WORK}/off.ktw" \
    || { echo "FAIL: saved model bytes differ with observability on"; exit 1; }
  cmp -s "${WORK}/on.ktc" "${WORK}/off.ktc" \
    || { echo "FAIL: checkpoint bytes differ with observability on"; exit 1; }
  grep "test AUC" "${WORK}/on.out"
done

# Negative coverage: the validator must actually reject broken artifacts.
echo '{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0}]}' \
  >"${WORK}/bad_trace.json"
if "${OBS_CHECK}" trace "${WORK}/bad_trace.json" 2>/dev/null; then
  echo "FAIL: obs_check accepted an X event without ts/dur"
  exit 1
fi
echo '{"run":"m","epoch":-1}' >"${WORK}/bad_run.jsonl"
if "${OBS_CHECK}" runlog "${WORK}/bad_run.jsonl" 2>/dev/null; then
  echo "FAIL: obs_check accepted a malformed run log"
  exit 1
fi

echo "kt::obs check passed"
