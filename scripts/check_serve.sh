#!/usr/bin/env bash
# End-to-end check of the kt::serve online inference path:
#
#   1. Builds ktcli + kt_loadgen, simulates a small dataset, and trains a
#      tiny model saved with the KTW2 metadata chunk.
#   2. Scores every prefix sample offline with `ktcli evaluate --json`
#      (single-threaded).
#   3. Starts `ktcli serve` on a TCP port (different thread count, dynamic
#      micro-batching live) and replays the dataset through kt_loadgen with
#      concurrent connections.
#   4. Asserts every online prediction equals the offline generator score
#      BIT FOR BIT — the serving subsystem's load-bearing contract
#      (kt_loadgen exits non-zero on any mismatch or missing sample).
#   5. Re-checks through the stdio transport with a handful of hand-rolled
#      requests, including eviction pressure (1 MB session budget).
#
# Usage: scripts/check_serve.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
PORT="${KT_SERVE_PORT:-19877}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" --target ktcli kt_loadgen -j "$(nproc)"

KTCLI="${BUILD_DIR}/tools/ktcli"
LOADGEN="${BUILD_DIR}/tools/kt_loadgen"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "${SERVER_PID}" ]] && kill "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== train a tiny model (saved with metadata) =="
"${KTCLI}" simulate --preset assist09 --scale 0.05 --seed 7 \
  --out "${WORK}/data.csv"
"${KTCLI}" train --data "${WORK}/data.csv" --encoder sakt --dim 16 \
  --epochs 2 --verbose false --save "${WORK}/model.ktw"

echo "== offline reference: ktcli evaluate --json (1 thread) =="
"${KTCLI}" evaluate --data "${WORK}/data.csv" --load "${WORK}/model.ktw" \
  --threads 1 --json > "${WORK}/offline.json"

echo "== online replay over TCP (2 threads, 4 connections) =="
# No --encoder/--dim flags: the server shapes itself from the metadata.
"${KTCLI}" serve --load "${WORK}/model.ktw" --data "${WORK}/data.csv" \
  --port "${PORT}" --threads 2 --max-batch 8 --max-wait-us 500 &
SERVER_PID=$!
for _ in $(seq 50); do
  if "${LOADGEN}" --port "${PORT}" --mode bench --connections 1 \
       --requests 1 >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

"${LOADGEN}" --port "${PORT}" --data "${WORK}/data.csv" \
  --expect "${WORK}/offline.json" --connections 4 | tee "${WORK}/replay.json"
grep -q '"mismatches":0' "${WORK}/replay.json"
grep -q '"missing":0' "${WORK}/replay.json"

kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

echo "== stdio transport + eviction pressure (1 MB budget) =="
{
  echo '{"op":"predict","student":"a","question":1}'
  echo '{"op":"update","student":"a","question":1,"response":1}'
  echo '{"op":"predict","student":"a","question":2}'
  echo '{"op":"explain","student":"a","question":2}'
  echo '{"op":"stats"}'
  echo '{"op":"reset","student":"a"}'
  echo '{"op":"stats"}'
} | "${KTCLI}" serve --load "${WORK}/model.ktw" --data "${WORK}/data.csv" \
      --memory-budget-mb 1 > "${WORK}/stdio.out"
[[ "$(grep -c '"ok":true' "${WORK}/stdio.out")" -eq 7 ]]
grep -q '"sessions":0' "${WORK}/stdio.out"   # after the reset

echo "OK: online serving is bit-identical to offline evaluation"
