#!/usr/bin/env bash
# End-to-end check of the kt::serve online inference path:
#
#   1. Builds ktcli + kt_loadgen, simulates a small dataset, and trains a
#      tiny model saved with the KTW2 metadata chunk.
#   2. Scores every prefix sample offline with `ktcli evaluate --json`
#      (single-threaded).
#   3. Starts `ktcli serve` on a TCP port (different thread count, dynamic
#      micro-batching live) and replays the dataset through kt_loadgen with
#      concurrent connections.
#   4. Asserts every online prediction equals the offline generator score
#      BIT FOR BIT — the serving subsystem's load-bearing contract
#      (kt_loadgen exits non-zero on any mismatch or missing sample).
#   5. Repeats the replay against a --shards 3 server: the sharded reactor
#      must serve the same bits (DESIGN.md §13).
#   6. Re-checks through the stdio transport with a handful of hand-rolled
#      requests, including eviction pressure (1 MB session budget).
#   7. Unless KT_SERVE_TSAN=0: rebuilds ktcli + kt_loadgen with
#      ThreadSanitizer (shared build-tsan tree, same as check_tsan.sh),
#      drives a --shards 4 server with concurrent bench + replay traffic,
#      and shuts it down gracefully over the wire ({"op":"shutdown"}).
#      halt_on_error=1 turns any data race in the reactor, the shard
#      queues, or the cold tier into a non-zero exit.
#
# Usage: scripts/check_serve.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TSAN_BUILD_DIR="${KT_SERVE_TSAN_BUILD_DIR:-build-tsan}"
PORT="${KT_SERVE_PORT:-19877}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" --target ktcli kt_loadgen -j "$(nproc)"

KTCLI="${BUILD_DIR}/tools/ktcli"
LOADGEN="${BUILD_DIR}/tools/kt_loadgen"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "${SERVER_PID}" ]] && kill "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== train a tiny model (saved with metadata) =="
"${KTCLI}" simulate --preset assist09 --scale 0.05 --seed 7 \
  --out "${WORK}/data.csv"
"${KTCLI}" train --data "${WORK}/data.csv" --encoder sakt --dim 16 \
  --epochs 2 --verbose false --save "${WORK}/model.ktw"

echo "== offline reference: ktcli evaluate --json (1 thread) =="
"${KTCLI}" evaluate --data "${WORK}/data.csv" --load "${WORK}/model.ktw" \
  --threads 1 --json > "${WORK}/offline.json"

echo "== online replay over TCP (2 threads, 4 connections) =="
# No --encoder/--dim flags: the server shapes itself from the metadata.
"${KTCLI}" serve --load "${WORK}/model.ktw" --data "${WORK}/data.csv" \
  --port "${PORT}" --threads 2 --max-batch 8 --max-wait-us 500 &
SERVER_PID=$!
for _ in $(seq 50); do
  if "${LOADGEN}" --port "${PORT}" --mode bench --connections 1 \
       --requests 1 >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

"${LOADGEN}" --port "${PORT}" --data "${WORK}/data.csv" \
  --expect "${WORK}/offline.json" --connections 4 | tee "${WORK}/replay.json"
grep -q '"mismatches":0' "${WORK}/replay.json"
grep -q '"missing":0' "${WORK}/replay.json"

kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

echo "== same replay against a 3-shard reactor: still bit-identical =="
"${KTCLI}" serve --load "${WORK}/model.ktw" --data "${WORK}/data.csv" \
  --port "${PORT}" --threads 2 --max-batch 8 --max-wait-us 500 --shards 3 &
SERVER_PID=$!
for _ in $(seq 50); do
  if "${LOADGEN}" --port "${PORT}" --mode bench --connections 1 \
       --requests 1 >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"${LOADGEN}" --port "${PORT}" --data "${WORK}/data.csv" \
  --expect "${WORK}/offline.json" --connections 4 \
  | tee "${WORK}/replay_sharded.json"
grep -q '"mismatches":0' "${WORK}/replay_sharded.json"
grep -q '"missing":0' "${WORK}/replay_sharded.json"
kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

echo "== stdio transport + eviction pressure (1 MB budget) =="
{
  echo '{"op":"predict","student":"a","question":1}'
  echo '{"op":"update","student":"a","question":1,"response":1}'
  echo '{"op":"predict","student":"a","question":2}'
  echo '{"op":"explain","student":"a","question":2}'
  echo '{"op":"stats"}'
  echo '{"op":"reset","student":"a"}'
  echo '{"op":"stats"}'
} | "${KTCLI}" serve --load "${WORK}/model.ktw" --data "${WORK}/data.csv" \
      --memory-budget-mb 1 > "${WORK}/stdio.out"
[[ "$(grep -c '"ok":true' "${WORK}/stdio.out")" -eq 7 ]]
grep -q '"sessions":0' "${WORK}/stdio.out"   # after the reset

echo "== recourse gate: suffix replay ≡ brute offline re-encode =="
# One server, two passes of the same recourse traffic: the fast path
# (prefix-clone + suffix replay) and --brute (full per-candidate
# re-encode). The reply digest folds base_p, every candidate probability
# and every intervention, so digest equality is bitwise top-K equality.
"${KTCLI}" serve --load "${WORK}/model.ktw" --data "${WORK}/data.csv" \
  --port "${PORT}" --threads 2 --max-batch 8 --max-wait-us 500 &
SERVER_PID=$!
for _ in $(seq 50); do
  if "${LOADGEN}" --port "${PORT}" --mode bench --connections 1 \
       --requests 1 >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"${LOADGEN}" --port "${PORT}" --mode recourse --data "${WORK}/data.csv" \
  --connections 4 --k 2 --top 3 | tee "${WORK}/recourse_fast.json"
"${LOADGEN}" --port "${PORT}" --mode recourse --data "${WORK}/data.csv" \
  --connections 4 --k 2 --top 3 --brute > "${WORK}/recourse_brute.json"
kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

digest() { sed -n 's/.*"recourse_fnv64":"\([0-9a-f]*\)".*/\1/p' "$1"; }
FAST_DIGEST="$(digest "${WORK}/recourse_fast.json")"
[[ -n "${FAST_DIGEST}" ]]
grep -q '"recourses":0' "${WORK}/recourse_fast.json" && {
  echo "recourse gate ran zero recourse requests"; exit 1; }
[[ "${FAST_DIGEST}" == "$(digest "${WORK}/recourse_brute.json")" ]] || {
  echo "recourse fast path diverges from brute re-encode"; exit 1; }

echo "== recourse gate: --shards 4 serves the same bits =="
"${KTCLI}" serve --load "${WORK}/model.ktw" --data "${WORK}/data.csv" \
  --port "${PORT}" --threads 2 --max-batch 8 --max-wait-us 500 --shards 4 &
SERVER_PID=$!
for _ in $(seq 50); do
  if "${LOADGEN}" --port "${PORT}" --mode bench --connections 1 \
       --requests 1 >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"${LOADGEN}" --port "${PORT}" --mode recourse --data "${WORK}/data.csv" \
  --connections 4 --k 2 --top 3 > "${WORK}/recourse_sharded.json"
kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""
[[ "${FAST_DIGEST}" == "$(digest "${WORK}/recourse_sharded.json")" ]] || {
  echo "recourse digests diverge between --shards 1 and --shards 4"; exit 1; }

if [[ "${KT_SERVE_TSAN:-1}" != "0" ]]; then
  echo "== TSan: 4-shard reactor under concurrent mixed loadgen =="
  # Same configuration as scripts/check_tsan.sh (shared build tree): -O1
  # keeps shadow frames honest, -march=native keeps FP codegen — and so
  # the bit-parity contract — identical to the normal build.
  cmake -B "${TSAN_BUILD_DIR}" -S . \
    -DKT_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS_DEBUG="-O1 -g -march=native" >/dev/null
  cmake --build "${TSAN_BUILD_DIR}" --target ktcli kt_loadgen -j "$(nproc)"
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

  # 1 MB budget + cold dir: eviction, replay rebuild, AND cold snapshot
  # save/load all run on the shard threads while the reactor mixes four
  # bench connections with a four-connection replay.
  "${TSAN_BUILD_DIR}/tools/ktcli" serve --load "${WORK}/model.ktw" \
    --data "${WORK}/data.csv" --port "${PORT}" --threads 2 \
    --max-batch 8 --max-wait-us 500 --shards 4 \
    --memory-budget-mb 1 --cold-dir "${WORK}/cold" &
  SERVER_PID=$!
  for _ in $(seq 300); do  # TSan startup is slow; poll generously
    if "${TSAN_BUILD_DIR}/tools/kt_loadgen" --port "${PORT}" --mode bench \
         --connections 1 --requests 1 >/dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done

  "${TSAN_BUILD_DIR}/tools/kt_loadgen" --port "${PORT}" --mode bench \
    --connections 4 --requests 100 > /dev/null &
  BENCH_PID=$!
  # Recourse rides the shard workers' heavy lane concurrently with the
  # light predict traffic — the lane split itself runs under TSan.
  "${TSAN_BUILD_DIR}/tools/kt_loadgen" --port "${PORT}" --mode recourse \
    --data "${WORK}/data.csv" --connections 2 --k 2 --top 3 > /dev/null &
  RECOURSE_PID=$!
  "${TSAN_BUILD_DIR}/tools/kt_loadgen" --port "${PORT}" \
    --data "${WORK}/data.csv" --expect "${WORK}/offline.json" \
    --connections 4 > "${WORK}/replay_tsan.json"
  wait "${BENCH_PID}"
  wait "${RECOURSE_PID}"
  grep -q '"mismatches":0' "${WORK}/replay_tsan.json"
  grep -q '"missing":0' "${WORK}/replay_tsan.json"

  # Graceful shutdown over the wire: the reactor stops accepting, drains
  # in-flight work, flushes cold snapshots, and the process must exit 0
  # (halt_on_error=1 turns any TSan report into a non-zero exit).
  exec 3<>"/dev/tcp/127.0.0.1/${PORT}"
  printf '{"op":"shutdown"}\n' >&3
  read -r -t 30 _reply <&3 || true
  exec 3<&- 3>&-
  wait "${SERVER_PID}"
  SERVER_PID=""
  echo "   TSan run clean: no races, graceful shutdown, parity held"
fi

if [[ "${KT_SERVE_PRECISION:-1}" != "0" ]]; then
  echo "== low-precision serve path (scripts/check_precision.sh) =="
  scripts/check_precision.sh "${BUILD_DIR}"
fi

echo "OK: online serving is bit-identical to offline evaluation"
