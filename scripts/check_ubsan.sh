#!/usr/bin/env bash
# Builds the test suite with UndefinedBehaviorSanitizer and runs the numeric
# kernel suites — above all the GEMM kernel equivalence sweeps, whose tiled
# micro kernels do the pointer arithmetic (panel packing, edge tiles, empty
# dims) most likely to hide UB, plus the autograd grad-check suites that
# drive the fused backward kernels. Any UBSan report fails the script.
#
# Usage: scripts/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ubsan}"

# O1 so the sweep finishes quickly while keeping checks meaningful; portable
# codegen to match the default build (see KT_NATIVE in CMakeLists.txt).
cmake -B "${BUILD_DIR}" -S . \
  -DKT_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS_DEBUG="-O1 -g" >/dev/null
cmake --build "${BUILD_DIR}" --target kt_tests -j "$(nproc)"

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

"${BUILD_DIR}/tests/kt_tests" \
  --gtest_filter='GemmKernelEquivalence*:*GemmParallelEquivalence*:TensorOps*:GradCheck*:FusedOps*' \
  --gtest_brief=1

echo "UBSan check passed"
