#!/usr/bin/env bash
# Builds the test suite with ThreadSanitizer and runs the parallelism-
# sensitive tests (thread pool, GEMM/tensor kernels, RCKT counterfactual
# fan-out, trainer/CV) under an oversubscribed pool. Any data race in the
# kt::parallel layer or the code it drives fails the script.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

# O1 keeps TSan's shadow instrumentation honest (no vanishing stack frames)
# while the suite still finishes quickly; -march=native matches the normal
# build's FP codegen so golden/determinism tests see identical numbers.
cmake -B "${BUILD_DIR}" -S . \
  -DKT_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS_DEBUG="-O1 -g -march=native" >/dev/null
cmake --build "${BUILD_DIR}" --target kt_tests -j "$(nproc)"

# Oversubscribe the pool so worker threads really interleave even on small
# machines; TSan sees every cross-thread access regardless of timing.
export KT_NUM_THREADS="${KT_NUM_THREADS:-8}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

"${BUILD_DIR}/tests/kt_tests" \
  --gtest_filter='Parallel*:*GemmParallel*:Rckt*:TrainerTest*:EvalTest*' \
  --gtest_brief=1

echo "TSan check passed (KT_NUM_THREADS=${KT_NUM_THREADS})"
