#!/usr/bin/env bash
# End-to-end regression gate for the continual-learning loop (DESIGN.md
# §16):
#
#   1. Builds ktcli + kt_loadgen + obs_check, trains a tiny model on the
#      scenario_base log, and starts `ktcli serve --continual` (2 shards)
#      with bench-scale trainer knobs.
#   2. Drives the drift scenario through `kt_loadgen --mode scenario` —
#      the mid-stream concept shift the loop exists to absorb — then waits
#      until the background trainer promotes at least one candidate
#      (polling the `stats` op).
#   3. Replays the drift traffic with --windows 4 and gates the report
#      with `obs_check scenario`:
#        * --min-weight-version 1 — a promotion actually landed and the
#          serving weights carry its version,
#        * --max-auc-drop — last-window online AUC must stay within
#          KT_CONTINUAL_MAX_AUC_DROP of the first window (post-swap AUC >=
#          pre-swap - eps),
#        * --expect-fnv — the window split must not change the traffic
#          digest bit-for-bit (drift replay is deterministic).
#   4. Reservoir determinism: fresh servers at --shards 1 and --shards 4
#      (training disabled via a huge --train-every) ingest the same drift
#      traffic; the `stats` continual.reservoir_fnv64 digests must match
#      bit-for-bit (the bottom-k replay set is shard-layout invariant).
#   5. TSan: builds the suite with -fsanitize=thread (shared build-tsan
#      dir, same config as check_tsan.sh) and runs the continual tests —
#      trainer mini-epochs + SwapWeights quiesce + shard traffic
#      concurrent. KT_CONTINUAL_SKIP_TSAN=1 skips this step.
#
# Usage: scripts/check_continual.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
PORT="${KT_CONTINUAL_PORT:-19881}"
SCALE="${KT_CONTINUAL_SCALE:-0.05}"
STUDENTS="${KT_CONTINUAL_STUDENTS:-40}"
# Loose: catches "the swap made the model worse" / "training diverged",
# not small AUC wiggles (the drift scenario degrades any frozen model).
MAX_AUC_DROP="${KT_CONTINUAL_MAX_AUC_DROP:-0.15}"
PROMOTE_TIMEOUT_S="${KT_CONTINUAL_PROMOTE_TIMEOUT_S:-60}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" --target ktcli kt_loadgen obs_check \
  -j "$(nproc)"

KTCLI="${BUILD_DIR}/tools/ktcli"
LOADGEN="${BUILD_DIR}/tools/kt_loadgen"
OBS_CHECK="${BUILD_DIR}/tools/obs_check"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "${SERVER_PID}" ]] && kill "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== train the serving model on the scenario_base log =="
"${KTCLI}" simulate --scenario scenario_base --scale "${SCALE}" \
  --out "${WORK}/base.csv"
"${KTCLI}" train --data "${WORK}/base.csv" --encoder sakt --dim 16 \
  --epochs 2 --verbose false --save "${WORK}/model.ktw"

start_server() {  # start_server <shards> <continual-dir> [extra flags...]
  local shards="$1" dir="$2"
  shift 2
  "${KTCLI}" serve --load "${WORK}/model.ktw" --port "${PORT}" --threads 2 \
    --max-batch 8 --max-wait-us 500 --shards "${shards}" \
    --continual --continual-dir "${dir}" \
    --reservoir 256 --tail 64 --continual-window 16 --gate-min 32 \
    --gate-eps 0.05 --continual-lr 1e-3 --continual-poll-ms 10 "$@" &
  SERVER_PID=$!
  for _ in $(seq 100); do
    if "${LOADGEN}" --port "${PORT}" --mode bench --connections 1 \
         --requests 1 >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: server did not come up on port ${PORT}" >&2
  exit 1
}

stop_server() {
  kill "${SERVER_PID}" 2>/dev/null || true
  wait "${SERVER_PID}" 2>/dev/null || true
  SERVER_PID=""
}

stats_line() {  # one {"op":"stats"} round-trip over /dev/tcp
  exec 3<>"/dev/tcp/127.0.0.1/${PORT}"
  printf '{"op":"stats"}\n' >&3
  local line
  IFS= read -r line <&3
  exec 3<&- 3>&-
  printf '%s' "${line}"
}

num_field() {  # num_field <json> <key> -> first integer value of key
  printf '%s' "$1" | sed "s/.*\"$2\":\([0-9][0-9]*\).*/\1/"
}

echo "== drift e2e: serve --continual (2 shards) on 127.0.0.1:${PORT} =="
start_server 2 "${WORK}/cont_e2e" --train-every 200

echo "== pass 1: drift traffic feeds the reservoir =="
"${LOADGEN}" --port "${PORT}" --mode scenario --scenario drift \
  --students "${STUDENTS}" --connections 2 > "${WORK}/pass1.json"
"${OBS_CHECK}" scenario "${WORK}/pass1.json" --expect-scenario drift
fnv="$(sed 's/.*"traffic_fnv64":"\([0-9a-f]*\)".*/\1/' "${WORK}/pass1.json")"

echo "== wait for the trainer to promote a candidate =="
promoted=0
for _ in $(seq "$((PROMOTE_TIMEOUT_S * 2))"); do
  line="$(stats_line)" || true
  if [[ "${line}" == *'"promotions":'* ]]; then
    p="$(num_field "${line}" promotions)"
    if [[ "${p}" -ge 1 ]]; then
      promoted=1
      echo "   promotions=${p}," \
           "weight_version=$(num_field "${line}" weight_version)"
      break
    fi
  fi
  sleep 0.5
done
if [[ "${promoted}" != 1 ]]; then
  echo "FAIL: no promotion within ${PROMOTE_TIMEOUT_S}s" >&2
  exit 1
fi

echo "== pass 2: windowed drift replay against the promoted weights =="
"${LOADGEN}" --port "${PORT}" --mode scenario --scenario drift \
  --students "${STUDENTS}" --connections 2 --windows 4 \
  > "${WORK}/pass2.json"
"${OBS_CHECK}" scenario "${WORK}/pass2.json" --expect-scenario drift \
  --expect-fnv "${fnv}" --min-weight-version 1 \
  --max-auc-drop "${MAX_AUC_DROP}"
stop_server

echo "== reservoir digest parity: --shards 1 vs --shards 4 =="
declare -A digest
for shards in 1 4; do
  # A huge --train-every disables mini-epochs: pure ingest, so the digest
  # isolates the reservoir (training could not change it anyway, but keep
  # the runs cheap and single-purpose).
  start_server "${shards}" "${WORK}/cont_s${shards}" --train-every 100000000
  "${LOADGEN}" --port "${PORT}" --mode scenario --scenario drift \
    --students "${STUDENTS}" --connections 2 > "${WORK}/parity_${shards}.json"
  line="$(stats_line)"
  digest[${shards}]="$(printf '%s' "${line}" |
    sed 's/.*"reservoir_fnv64":"\([0-9a-f]*\)".*/\1/')"
  events="$(num_field "${line}" events)"
  echo "   shards=${shards}: events=${events}" \
       "reservoir_fnv64=${digest[${shards}]}"
  stop_server
done
if [[ -z "${digest[1]}" || "${digest[1]}" != "${digest[4]}" ]]; then
  echo "FAIL: reservoir digest ${digest[4]} (4 shards) != ${digest[1]}" \
       "(1 shard)" >&2
  exit 1
fi

if [[ "${KT_CONTINUAL_SKIP_TSAN:-0}" != 1 ]]; then
  echo "== TSan: trainer + swap + shard traffic concurrent =="
  TSAN_BUILD_DIR="${KT_CONTINUAL_TSAN_BUILD_DIR:-build-tsan}"
  cmake -B "${TSAN_BUILD_DIR}" -S . \
    -DKT_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS_DEBUG="-O1 -g -march=native" >/dev/null
  cmake --build "${TSAN_BUILD_DIR}" --target kt_tests -j "$(nproc)"
  KT_NUM_THREADS="${KT_NUM_THREADS:-8}" \
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
  "${TSAN_BUILD_DIR}/tests/kt_tests" \
    --gtest_filter='ReservoirTest*:CollectorTest*:TrainerTest*:SwapWeightsTest*:ColdTierFingerprintTest*' \
    --gtest_brief=1
fi

echo "OK: promotion landed, post-swap AUC within ${MAX_AUC_DROP} of" \
     "pre-swap, reservoir digests shard-invariant, TSan clean"
