#!/usr/bin/env bash
# End-to-end regression gate for the scenario fleet (DESIGN.md §12):
#
#   1. Builds ktcli + kt_loadgen + obs_check, generates the scenario_base
#      historical log, and trains a tiny model on it — the one model that
#      serves every scenario (shared 400x20 question/concept space).
#   2. Starts `ktcli serve` on a TCP port and drives EVERY registered
#      scenario through `kt_loadgen --mode scenario` at small scale
#      (open-loop streaming traffic, 2 connections).
#   3. Validates each JSON report against the documented schema with
#      `obs_check scenario`, gating on:
#        * a per-scenario rolling-AUC floor (regression gate: the model
#          must stay predictive on every traffic shape; adversarial
#          bursts randomize responses, so its floor is lower),
#        * a predict-p99 latency budget,
#        * seed-determinism — each scenario runs TWICE and the second
#          report's traffic_fnv64 digest must equal the first bit-for-bit.
#   4. Restarts the server with --shards 8 and replays every scenario once
#      more: each report's pred_fnv64 must equal the --shards 1 digest
#      bit-for-bit — the sharded reactor serves exactly the predictions
#      the single-shard engine serves (DESIGN.md §13).
#   5. Exercises the unknown-name paths: ktcli and kt_loadgen must list
#      the valid names instead of aborting.
#
# Usage: scripts/check_scenarios.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
PORT="${KT_SCENARIO_PORT:-19879}"
SCALE="${KT_SCENARIO_SCALE:-0.05}"
STUDENTS="${KT_SCENARIO_STUDENTS:-40}"
# Generous so slow CI boxes pass; tight enough to catch a 10x regression.
MAX_P99_US="${KT_SCENARIO_MAX_P99_US:-200000}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" --target ktcli kt_loadgen obs_check \
  -j "$(nproc)"

KTCLI="${BUILD_DIR}/tools/ktcli"
LOADGEN="${BUILD_DIR}/tools/kt_loadgen"
OBS_CHECK="${BUILD_DIR}/tools/obs_check"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "${SERVER_PID}" ]] && kill "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== train the scenario-serving model on the scenario_base log =="
"${KTCLI}" simulate --scenario scenario_base --scale "${SCALE}" \
  --out "${WORK}/base.csv"
"${KTCLI}" train --data "${WORK}/base.csv" --encoder sakt --dim 16 \
  --epochs 2 --verbose false --save "${WORK}/model.ktw"

echo "== unknown-name paths list the registry instead of aborting =="
if "${KTCLI}" simulate --scenario warp_core --out "${WORK}/x.csv" \
     2> "${WORK}/ktcli_err.txt"; then
  echo "FAIL: ktcli accepted an unknown scenario" >&2
  exit 1
fi
grep -q "cold_start" "${WORK}/ktcli_err.txt"
if "${LOADGEN}" --port "${PORT}" --mode scenario --scenario warp_core \
     2> "${WORK}/loadgen_err.txt"; then
  echo "FAIL: kt_loadgen accepted an unknown scenario" >&2
  exit 1
fi
grep -q "cold_start" "${WORK}/loadgen_err.txt"

start_server() {  # start_server <shards>
  "${KTCLI}" serve --load "${WORK}/model.ktw" --port "${PORT}" --threads 2 \
    --max-batch 8 --max-wait-us 500 --shards "$1" &
  SERVER_PID=$!
  for _ in $(seq 50); do
    if "${LOADGEN}" --port "${PORT}" --mode bench --connections 1 \
         --requests 1 >/dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done
}

stop_server() {
  kill "${SERVER_PID}" 2>/dev/null || true
  wait "${SERVER_PID}" 2>/dev/null || true
  SERVER_PID=""
}

json_field() {  # json_field <file> <key>  -> hex digest value
  sed "s/.*\"$2\":\"\([0-9a-f]*\)\".*/\1/" "$1"
}

echo "== serve the model on 127.0.0.1:${PORT} (1 shard) =="
start_server 1

# Per-scenario rolling-AUC floors. The model never trains on scenario
# traffic, so these are deliberately loose sanity floors, not paper-grade
# targets: they catch "the model is no longer predictive on this traffic
# shape" (or a scoring regression), not small AUC wiggles. Adversarial
# bursts replace ~20% of responses with guess/slip noise and drift
# contradicts the learned student state mid-sequence, so their floors sit
# at chance; the rest must stay visibly above it.
auc_floor() {
  case "$1" in
    adversarial|drift) echo "0.50" ;;
    cold_start)        echo "0.52" ;;
    *)                 echo "0.55" ;;
  esac
}

for name in cold_start forgetting adversarial drift zipf; do
  echo "== scenario ${name}: twice through the fleet gate =="
  "${LOADGEN}" --port "${PORT}" --mode scenario --scenario "${name}" \
    --students "${STUDENTS}" --connections 2 \
    > "${WORK}/${name}_1.json"
  "${LOADGEN}" --port "${PORT}" --mode scenario --scenario "${name}" \
    --students "${STUDENTS}" --connections 2 \
    > "${WORK}/${name}_2.json"

  fnv="$(json_field "${WORK}/${name}_1.json" traffic_fnv64)"
  "${OBS_CHECK}" scenario "${WORK}/${name}_1.json" \
    --expect-scenario "${name}" \
    --min-auc "$(auc_floor "${name}")" --max-p99-us "${MAX_P99_US}"
  # Determinism gate: run 2 must regenerate run 1's traffic bit-for-bit.
  "${OBS_CHECK}" scenario "${WORK}/${name}_2.json" \
    --expect-scenario "${name}" --expect-fnv "${fnv}" \
    --min-auc "$(auc_floor "${name}")" --max-p99-us "${MAX_P99_US}"
  # Keep run 1's prediction digest for the cross-shard gate below. (Run 2
  # reuses run 1's student names on the SAME server, so its sessions carry
  # doubled history and its predictions legitimately differ — the parity
  # comparison is against a fresh --shards 8 server instead.)
  pred1="$(json_field "${WORK}/${name}_1.json" pred_fnv64)"
  [[ -n "${pred1}" ]] || { echo "FAIL: no pred_fnv64 in ${name}" >&2; exit 1; }
  echo "${pred1}" > "${WORK}/${name}.pred1"
done

stop_server

echo "== shard parity: --shards 8 must serve bit-identical predictions =="
start_server 8
for name in cold_start forgetting adversarial drift zipf; do
  "${LOADGEN}" --port "${PORT}" --mode scenario --scenario "${name}" \
    --students "${STUDENTS}" --connections 2 \
    > "${WORK}/${name}_8.json"
  pred1="$(cat "${WORK}/${name}.pred1")"
  pred8="$(json_field "${WORK}/${name}_8.json" pred_fnv64)"
  if [[ "${pred8}" != "${pred1}" ]]; then
    echo "FAIL: ${name}: pred_fnv64 ${pred8} (8 shards) != ${pred1}" \
         "(1 shard)" >&2
    exit 1
  fi
  echo "   ${name}: pred_fnv64 ${pred8} matches across shard counts"
done
stop_server

echo "OK: scenarios deterministic, predictive, within latency budget," \
     "and bit-identical across shard counts"
