#!/usr/bin/env bash
# Accuracy-parity gate for the low-precision serve path (--precision).
#
# For every paper-dataset preset (assist09, assist12, slepemapy, eedi):
#
#   1. Simulates a small dataset, trains a tiny fp32 model, and scores
#      every prefix sample offline with `ktcli evaluate --json`.
#   2. Serves the model at fp32 and replays the dataset: every online
#      probability must match the offline generator score BIT FOR BIT
#      (the low-precision machinery must leave the default path alone).
#   3. Serves the same model with --precision bf16 and again with
#      --precision int8 (int8 calibrates activation scales from --data at
#      startup), replaying with --expect-tol: probabilities must stay
#      within the tolerance of fp32, and the online AUC must match the
#      fp32 AUC to within 1e-3 — quantization may not cost accuracy.
#
# Finally one fp32 scenario run checks pred_fnv64 is identical between a
# 1-shard and a 4-shard server, pinning the fp32 digest contract that
# scripts/check_scenarios.sh gates in depth.
#
# Usage: scripts/check_precision.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
PORT="${KT_PRECISION_PORT:-19879}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" --target ktcli kt_loadgen -j "$(nproc)"

KTCLI="${BUILD_DIR}/tools/ktcli"
LOADGEN="${BUILD_DIR}/tools/kt_loadgen"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "${SERVER_PID}" ]] && kill "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

json_field() {  # json_field FILE KEY -> value (number or bare string)
  sed -n "s/.*\"$2\":\"\\{0,1\\}\\([^,\"}]*\\)\"\\{0,1\\}.*/\\1/p" "$1"
}

start_server() {  # start_server MODEL DATA EXTRA_FLAGS...
  local model="$1" data="$2"
  shift 2
  "${KTCLI}" serve --load "${model}" --data "${data}" --port "${PORT}" \
    --threads 2 --max-batch 8 --max-wait-us 500 "$@" &
  SERVER_PID=$!
  for _ in $(seq 100); do
    if "${LOADGEN}" --port "${PORT}" --mode bench --connections 1 \
         --requests 1 >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: server did not come up" >&2
  return 1
}

stop_server() {
  kill "${SERVER_PID}" 2>/dev/null || true
  wait "${SERVER_PID}" 2>/dev/null || true
  SERVER_PID=""
}

auc_close() {  # auc_close A B -> asserts |A - B| < 1e-3
  awk -v a="$1" -v b="$2" \
    'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d < 1e-3) }'
}

for PRESET in assist09 assist12 slepemapy eedi; do
  echo "== ${PRESET}: train fp32, serve fp32/bf16/int8 =="
  DATA="${WORK}/${PRESET}.csv"
  MODEL="${WORK}/${PRESET}.ktw"
  "${KTCLI}" simulate --preset "${PRESET}" --scale 0.03 --seed 11 \
    --out "${DATA}"
  "${KTCLI}" train --data "${DATA}" --encoder dkt --dim 16 --epochs 2 \
    --verbose false --save "${MODEL}"
  "${KTCLI}" evaluate --data "${DATA}" --load "${MODEL}" --threads 1 \
    --json > "${WORK}/${PRESET}_offline.json"

  # fp32: the default path must still be bit-for-bit with the offline
  # scorer — the low-precision machinery may not perturb it.
  start_server "${MODEL}" "${DATA}" --precision fp32
  "${LOADGEN}" --port "${PORT}" --data "${DATA}" \
    --expect "${WORK}/${PRESET}_offline.json" --connections 4 \
    > "${WORK}/${PRESET}_fp32.json"
  stop_server
  grep -q '"mismatches":0' "${WORK}/${PRESET}_fp32.json"
  grep -q '"missing":0' "${WORK}/${PRESET}_fp32.json"
  AUC_FP32="$(json_field "${WORK}/${PRESET}_fp32.json" auc)"

  for PRECISION in bf16 int8; do
    # Tolerance on the per-prediction probability error: the bf16 head is
    # good to ~1e-4 and int8 to ~1e-3 on these shapes; 10x slack keeps the
    # gate meaningful without flaking.
    TOL=0.001
    [[ "${PRECISION}" == "int8" ]] && TOL=0.01
    start_server "${MODEL}" "${DATA}" --precision "${PRECISION}"
    "${LOADGEN}" --port "${PORT}" --data "${DATA}" \
      --expect "${WORK}/${PRESET}_offline.json" --expect-tol "${TOL}" \
      --connections 4 > "${WORK}/${PRESET}_${PRECISION}.json"
    stop_server
    grep -q '"mismatches":0' "${WORK}/${PRESET}_${PRECISION}.json"
    grep -q '"missing":0' "${WORK}/${PRESET}_${PRECISION}.json"
    AUC_Q="$(json_field "${WORK}/${PRESET}_${PRECISION}.json" auc)"
    if ! auc_close "${AUC_Q}" "${AUC_FP32}"; then
      echo "FAIL: ${PRESET} ${PRECISION} AUC ${AUC_Q} drifted from" \
           "fp32 AUC ${AUC_FP32} (>= 1e-3)" >&2
      exit 1
    fi
    echo "   ${PRECISION}: AUC ${AUC_Q} vs fp32 ${AUC_FP32}," \
         "max_abs_err $(json_field "${WORK}/${PRESET}_${PRECISION}.json" \
                        max_abs_err)"
  done
done

echo "== fp32 scenario digest: 1 shard vs 4 shards =="
DATA="${WORK}/assist09.csv"
MODEL="${WORK}/assist09.ktw"
for SHARDS in 1 4; do
  start_server "${MODEL}" "${DATA}" --precision fp32 --shards "${SHARDS}"
  "${LOADGEN}" --port "${PORT}" --mode scenario --scenario cold_start \
    --students 40 --connections 2 \
    > "${WORK}/scenario_${SHARDS}.json"
  stop_server
done
PRED1="$(json_field "${WORK}/scenario_1.json" pred_fnv64)"
PRED4="$(json_field "${WORK}/scenario_4.json" pred_fnv64)"
[[ -n "${PRED1}" && "${PRED1}" == "${PRED4}" ]] || {
  echo "FAIL: fp32 pred_fnv64 ${PRED4} (4 shards) != ${PRED1} (1 shard)" >&2
  exit 1
}
echo "   pred_fnv64 ${PRED1} identical across shard counts"

echo "OK: low-precision serving holds AUC parity; fp32 path is untouched"
