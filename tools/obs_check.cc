// obs_check — schema validator for the kt::obs artifacts.
//
//   obs_check trace  trace.json   Validate a Chrome trace-event file
//                                 (--trace-out output).
//   obs_check runlog run.jsonl    Validate a per-epoch JSONL run log
//                                 (--run-log output).
//   obs_check scenario report.json [--min-auc A] [--max-p99-us U]
//                                 [--expect-scenario NAME] [--expect-fnv H]
//                                 [--min-weight-version N] [--max-auc-drop E]
//                                 Validate a `kt_loadgen --mode scenario`
//                                 report (schema in src/serve/loadgen.h)
//                                 and optionally gate on a minimum rolling
//                                 AUC, a maximum predict p99 latency, the
//                                 scenario name, and the deterministic
//                                 traffic digest (two runs of the same
//                                 seed must agree on it bit-for-bit). The
//                                 last two gate `serve --continual` runs:
//                                 the final weight_version must reach N
//                                 (>= N promotions landed) and the last
//                                 drift window's AUC may trail the first
//                                 window's by at most E.
//
// Exit status 0 when the file is well-formed and matches the documented
// schema (obs/trace.h, obs/runlog.h, src/serve/loadgen.h), 1 with a
// diagnostic on stderr otherwise. scripts/check_obs.sh runs the first two
// over a short training run; scripts/check_scenarios.sh runs the scenario
// mode over every registered workload.
//
// The JSON parser below is deliberately minimal (objects, arrays, strings,
// numbers, true/false/null; no \uXXXX decoding beyond pass-through) — just
// enough to hold the two schemas to account without external dependencies.
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fileio.h"
#include "core/flags.h"

namespace kt {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  bool number_is_integral = false;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses one JSON value spanning the whole input (trailing whitespace
  // allowed). Returns false with error() set on malformed input.
  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing bytes after JSON value");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " (at byte " + std::to_string(pos_) + ")";
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      SkipWhitespace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control byte in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("malformed \\u escape");
            }
            ++pos_;
          }
          *out += '?';  // placeholder; schemas never compare escaped text
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseKeyword(JsonValue* out) {
    auto match = [&](const char* word) {
      const size_t n = std::string(word).size();
      if (text_.compare(pos_, n, word) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return true;
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return true;
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return Fail("unknown keyword");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = (c == '+' || c == '-') ? integral : false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(value)) {
      return Fail("malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    out->number_is_integral = integral;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Schema checks
// ---------------------------------------------------------------------------

int FailCheck(const std::string& what, const std::string& why) {
  std::fprintf(stderr, "obs_check: %s: %s\n", what.c_str(), why.c_str());
  return 1;
}

// Chrome trace-event schema (obs/trace.h): a top-level object with a
// "traceEvents" array; every event is an object with string "name"/"ph",
// integer pid/tid; "X" (complete) events carry non-negative numeric ts/dur,
// "M" (metadata) thread_name events carry args.name. At least one X event
// and one thread_name record must be present — an empty trace means the
// instrumentation never fired.
int CheckTrace(const std::string& path) {
  std::string text;
  const Status read = ReadFileToString(path, &text);
  if (!read.ok()) return FailCheck(path, read.ToString());
  JsonValue root;
  JsonParser parser(text);
  if (!parser.Parse(&root)) return FailCheck(path, parser.error());
  if (!root.IsObject()) return FailCheck(path, "top level is not an object");
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->IsArray()) {
    return FailCheck(path, "missing \"traceEvents\" array");
  }
  size_t complete_events = 0;
  size_t thread_names = 0;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (!event.IsObject()) return FailCheck(path, where + " is not an object");
    const JsonValue* name = event.Find("name");
    const JsonValue* ph = event.Find("ph");
    if (name == nullptr || !name->IsString() || name->string_value.empty()) {
      return FailCheck(path, where + " lacks a string \"name\"");
    }
    if (ph == nullptr || !ph->IsString()) {
      return FailCheck(path, where + " lacks a string \"ph\"");
    }
    for (const char* key : {"pid", "tid"}) {
      const JsonValue* v = event.Find(key);
      if (v == nullptr || !v->IsNumber() || !v->number_is_integral) {
        return FailCheck(path,
                         where + " lacks an integer \"" + key + "\"");
      }
    }
    if (ph->string_value == "X") {
      ++complete_events;
      for (const char* key : {"ts", "dur"}) {
        const JsonValue* v = event.Find(key);
        if (v == nullptr || !v->IsNumber() || v->number < 0.0) {
          return FailCheck(
              path, where + " lacks a non-negative numeric \"" + key + "\"");
        }
      }
    } else if (ph->string_value == "M") {
      if (name->string_value == "thread_name") {
        const JsonValue* args = event.Find("args");
        const JsonValue* track =
            args != nullptr && args->IsObject() ? args->Find("name") : nullptr;
        if (track == nullptr || !track->IsString()) {
          return FailCheck(path, where + " thread_name lacks args.name");
        }
        ++thread_names;
      }
    } else {
      return FailCheck(path, where + " has unexpected ph \"" +
                                 ph->string_value + "\"");
    }
  }
  if (complete_events == 0) {
    return FailCheck(path, "no complete (\"ph\":\"X\") events — empty trace");
  }
  if (thread_names == 0) {
    return FailCheck(path, "no thread_name metadata records");
  }
  std::printf("obs_check: %s ok (%zu slices, %zu tracks)\n", path.c_str(),
              complete_events, thread_names);
  return 0;
}

// Run-log schema (obs/runlog.h): one JSON object per line with the fixed
// key set; numbers where numbers are promised, integers where integers are,
// non-negative where negatives are impossible.
int CheckRunLog(const std::string& path) {
  std::string text;
  const Status read = ReadFileToString(path, &text);
  if (!read.ok()) return FailCheck(path, read.ToString());
  size_t records = 0;
  size_t line_start = 0;
  int line_number = 0;
  while (line_start < text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    ++line_number;
    if (line.empty()) continue;
    const std::string where = "line " + std::to_string(line_number);
    JsonValue entry;
    JsonParser parser(line);
    if (!parser.Parse(&entry)) {
      return FailCheck(path, where + ": " + parser.error());
    }
    if (!entry.IsObject()) {
      return FailCheck(path, where + " is not a JSON object");
    }
    const JsonValue* run = entry.Find("run");
    if (run == nullptr || !run->IsString()) {
      return FailCheck(path, where + " lacks a string \"run\"");
    }
    for (const char* key : {"epoch", "tokens", "gemm_flops", "rss_bytes"}) {
      const JsonValue* v = entry.Find(key);
      if (v == nullptr || !v->IsNumber() || !v->number_is_integral ||
          v->number < 0.0) {
        return FailCheck(
            path, where + " lacks a non-negative integer \"" + key + "\"");
      }
    }
    for (const char* key : {"train_loss", "val_auc", "val_acc", "epoch_ms",
                            "tokens_per_sec", "ckpt_ms"}) {
      const JsonValue* v = entry.Find(key);
      if (v == nullptr || !v->IsNumber()) {
        return FailCheck(path, where + " lacks a numeric \"" + key + "\"");
      }
    }
    for (const char* key : {"val_auc", "val_acc"}) {
      const double v = entry.Find(key)->number;
      if (v < 0.0 || v > 1.0) {
        return FailCheck(path, where + " \"" + std::string(key) +
                                   "\" outside [0, 1]");
      }
    }
    ++records;
  }
  if (records == 0) return FailCheck(path, "no run-log records");
  std::printf("obs_check: %s ok (%zu epochs)\n", path.c_str(), records);
  return 0;
}

// Scenario-report schema (src/serve/loadgen.h: ScenarioSummaryJson): one
// JSON object with the fixed key set; optional gate flags turn schema
// validation into a regression gate for scripts/check_scenarios.sh.
int CheckScenario(const std::string& path, const FlagParser& flags) {
  std::string text;
  const Status read = ReadFileToString(path, &text);
  if (!read.ok()) return FailCheck(path, read.ToString());
  JsonValue root;
  JsonParser parser(text);
  if (!parser.Parse(&root)) return FailCheck(path, parser.error());
  if (!root.IsObject()) return FailCheck(path, "top level is not an object");

  const JsonValue* mode = root.Find("mode");
  if (mode == nullptr || !mode->IsString() ||
      mode->string_value != "scenario") {
    return FailCheck(path, "\"mode\" is not \"scenario\"");
  }
  const JsonValue* scenario = root.Find("scenario");
  if (scenario == nullptr || !scenario->IsString() ||
      scenario->string_value.empty()) {
    return FailCheck(path, "lacks a string \"scenario\"");
  }
  for (const char* key : {"connections", "seed", "students", "interactions",
                          "predictions", "auc_samples", "auc_window"}) {
    const JsonValue* v = root.Find(key);
    if (v == nullptr || !v->IsNumber() || !v->number_is_integral ||
        v->number < 0.0) {
      return FailCheck(path,
                       "lacks a non-negative integer \"" + std::string(key) +
                           "\"");
    }
  }
  for (const char* key :
       {"scale", "elapsed_s", "throughput_rps", "auc", "predict_p50_us",
        "predict_p99_us", "predict_mean_us", "update_p50_us",
        "update_p99_us", "update_mean_us"}) {
    const JsonValue* v = root.Find(key);
    if (v == nullptr || !v->IsNumber() || v->number < 0.0) {
      return FailCheck(
          path, "lacks a non-negative numeric \"" + std::string(key) + "\"");
    }
  }
  const double auc = root.Find("auc")->number;
  if (auc > 1.0) return FailCheck(path, "\"auc\" outside [0, 1]");
  const JsonValue* fnv = root.Find("traffic_fnv64");
  if (fnv == nullptr || !fnv->IsString() || fnv->string_value.size() != 16) {
    return FailCheck(path, "lacks a 16-hex-digit \"traffic_fnv64\"");
  }
  for (char c : fnv->string_value) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      return FailCheck(path, "non-hex digit in \"traffic_fnv64\"");
    }
  }
  // Internal consistency: every interaction fires predict-then-update, and
  // the rolling window can't hold more pairs than were predicted.
  if (root.Find("predictions")->number != root.Find("interactions")->number) {
    return FailCheck(path, "predictions != interactions");
  }
  if (root.Find("auc_samples")->number > root.Find("predictions")->number) {
    return FailCheck(path, "auc_samples exceeds predictions");
  }

  // Model identity relayed from the server's `stats` op. The fingerprint
  // may be empty (stats poll failed) but when present must be 16 hex
  // digits; the weight version is a non-negative integer that only a
  // continual-trainer promotion advances.
  const JsonValue* model_fp = root.Find("model_fingerprint");
  if (model_fp == nullptr || !model_fp->IsString()) {
    return FailCheck(path, "lacks a string \"model_fingerprint\"");
  }
  if (!model_fp->string_value.empty()) {
    if (model_fp->string_value.size() != 16) {
      return FailCheck(path, "\"model_fingerprint\" is not 16 hex digits");
    }
    for (char c : model_fp->string_value) {
      if (!std::isxdigit(static_cast<unsigned char>(c))) {
        return FailCheck(path, "non-hex digit in \"model_fingerprint\"");
      }
    }
  }
  const JsonValue* weight_version = root.Find("weight_version");
  if (weight_version == nullptr || !weight_version->IsNumber() ||
      !weight_version->number_is_integral || weight_version->number < 0.0) {
    return FailCheck(path, "lacks a non-negative integer \"weight_version\"");
  }

  // Drift-phase breakdown (--windows > 1): each entry carries its own AUC
  // plus the post-phase model identity.
  const JsonValue* windows = root.Find("windows");
  if (windows != nullptr) {
    if (!windows->IsArray() || windows->array.empty()) {
      return FailCheck(path, "\"windows\" is not a non-empty array");
    }
    for (size_t i = 0; i < windows->array.size(); ++i) {
      const JsonValue& win = windows->array[i];
      const std::string where = "windows[" + std::to_string(i) + "]";
      if (!win.IsObject()) return FailCheck(path, where + " is not an object");
      for (const char* key :
           {"index", "students", "auc_samples", "weight_version"}) {
        const JsonValue* v = win.Find(key);
        if (v == nullptr || !v->IsNumber() || !v->number_is_integral ||
            v->number < 0.0) {
          return FailCheck(path, where + " lacks a non-negative integer \"" +
                                     std::string(key) + "\"");
        }
      }
      const JsonValue* win_auc = win.Find("auc");
      if (win_auc == nullptr || !win_auc->IsNumber() ||
          win_auc->number < 0.0 || win_auc->number > 1.0) {
        return FailCheck(path, where + " lacks an \"auc\" in [0, 1]");
      }
      const JsonValue* win_fp = win.Find("model_fingerprint");
      if (win_fp == nullptr || !win_fp->IsString()) {
        return FailCheck(path, where + " lacks a string \"model_fingerprint\"");
      }
      if (win.Find("index")->number != static_cast<double>(i)) {
        return FailCheck(path, where + " index out of order");
      }
    }
  }

  // Optional regression gates.
  const double min_auc = flags.GetDouble("min-auc", -1.0);
  if (min_auc >= 0.0 && auc < min_auc) {
    return FailCheck(path, "AUC regression: " + std::to_string(auc) +
                               " < required " + std::to_string(min_auc));
  }
  const double max_p99 = flags.GetDouble("max-p99-us", -1.0);
  const double p99 = root.Find("predict_p99_us")->number;
  if (max_p99 >= 0.0 && p99 > max_p99) {
    return FailCheck(path, "latency regression: predict p99 " +
                               std::to_string(p99) + "us > budget " +
                               std::to_string(max_p99) + "us");
  }
  const std::string expect_scenario = flags.GetString("expect-scenario", "");
  if (!expect_scenario.empty() &&
      scenario->string_value != expect_scenario) {
    return FailCheck(path, "scenario \"" + scenario->string_value +
                               "\" != expected \"" + expect_scenario + "\"");
  }
  const std::string expect_fnv = flags.GetString("expect-fnv", "");
  if (!expect_fnv.empty() && fnv->string_value != expect_fnv) {
    return FailCheck(path, "traffic digest " + fnv->string_value +
                               " != expected " + expect_fnv +
                               " — scenario stream is not deterministic");
  }
  // Continual gates (scripts/check_continual.sh). --min-weight-version
  // requires the serving model to have advanced at least N promotions
  // (version starts at 0 on a fresh `serve --continual`); --max-auc-drop
  // bounds how much the LAST drift window's AUC may fall below the FIRST
  // window's — the "post-swap no worse than pre-swap − ε" acceptance gate.
  const int64_t min_weight_version = flags.GetInt("min-weight-version", -1);
  if (min_weight_version >= 0 &&
      weight_version->number < static_cast<double>(min_weight_version)) {
    return FailCheck(path, "weight_version " +
                               std::to_string(
                                   static_cast<int64_t>(
                                       weight_version->number)) +
                               " < required " +
                               std::to_string(min_weight_version) +
                               " — no model promotion landed");
  }
  const double max_auc_drop = flags.GetDouble("max-auc-drop", -1.0);
  if (max_auc_drop >= 0.0) {
    if (windows == nullptr || windows->array.size() < 2) {
      return FailCheck(path,
                       "--max-auc-drop needs a \"windows\" array with >= 2 "
                       "entries (run kt_loadgen with --windows W)");
    }
    const double first_auc = windows->array.front().Find("auc")->number;
    const double last_auc = windows->array.back().Find("auc")->number;
    if (first_auc - last_auc > max_auc_drop) {
      return FailCheck(path, "drift AUC regression: last window " +
                                 std::to_string(last_auc) +
                                 " < first window " +
                                 std::to_string(first_auc) + " - " +
                                 std::to_string(max_auc_drop));
    }
  }
  std::printf(
      "obs_check: %s ok (%s: auc %.4f, predict p99 %.0fus, fnv %s, "
      "weights v%lld)\n",
      path.c_str(), scenario->string_value.c_str(), auc, p99,
      fnv->string_value.c_str(),
      static_cast<long long>(weight_version->number));
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: obs_check <trace|runlog|scenario> <file> [gates]\n");
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "trace") return CheckTrace(argv[2]);
  if (mode == "runlog") return CheckRunLog(argv[2]);
  if (mode == "scenario") {
    // Gate flags follow the file argument: parse argv[3..].
    FlagParser flags;
    const Status status = flags.Parse(argc - 2, argv + 2);
    if (!status.ok()) {
      std::fprintf(stderr, "obs_check: %s\n", status.ToString().c_str());
      return 2;
    }
    return CheckScenario(argv[2], flags);
  }
  std::fprintf(stderr, "obs_check: unknown mode '%s'\n", mode.c_str());
  return 2;
}

}  // namespace
}  // namespace kt

int main(int argc, char** argv) { return kt::Main(argc, argv); }
