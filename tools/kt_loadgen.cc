// kt_loadgen — closed-loop load generator / replay client for `ktcli serve`.
//
// Modes (--mode):
//   replay  (default) Replays a CSV dataset against a running server: every
//           student's interactions become update ops on session "s<i>", and
//           at every offline evaluation target (the same positions `ktcli
//           evaluate --json` scores: MakePrefixSamples(stride, min_target))
//           a predict op fires BEFORE the update, so the server sees exactly
//           the history the offline scorer saw. With --expect FILE (the
//           JSON object written by `ktcli evaluate --json`) every online
//           probability is compared BIT-FOR-BIT against the offline
//           generator_score; any mismatch fails the run (exit 1). The
//           stride/min_target are read from the expect file so the two
//           sides can never disagree about which samples exist.
//   bench   Closed-loop throughput/latency benchmark: --connections threads
//           each drive their own session with alternating update/predict
//           ops on random questions for --requests requests.
//
// Both modes print a one-line JSON summary (throughput, latency
// percentiles, mismatch counts) to stdout. The server must be listening on
// 127.0.0.1:--port (start it with `ktcli serve --load m.ktw --port P`).
//
// Flags:
//   --port P            server TCP port (required)
//   --mode replay|bench
//   --connections N     concurrent client connections (default 1)
//   replay: --data data.csv [--expect eval.json] [--window 50]
//           [--min-length 5] [--stride 4] [--min-target 4]
//   bench:  [--requests 200 per connection] [--questions 100] [--seed 1]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "data/io.h"
#include "rckt/samples.h"
#include "serve/json.h"

namespace kt {
namespace {

// Blocking line-oriented client connection to 127.0.0.1:port.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port, std::string* error) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = "socket() failed";
      return false;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      *error = "connect() to 127.0.0.1:" + std::to_string(port) + " failed";
      return false;
    }
    return true;
  }

  // Sends one request line and reads the one response line.
  bool RoundTrip(const std::string& line, std::string* response,
                 std::string* error) {
    std::string out = line;
    out.push_back('\n');
    size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, 0);
      if (n <= 0) {
        *error = "send() failed";
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    response->clear();
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *response = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        *error = "server closed the connection";
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

uint32_t FloatBits(float f) {
  uint32_t u = 0;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

std::string PredictLine(const std::string& student, int64_t question,
                        const std::vector<int64_t>& concepts) {
  serve::JsonWriter w;
  w.BeginObject();
  w.Key("op").String("predict");
  w.Key("student").String(student);
  w.Key("question").Int(question);
  w.Key("concepts").BeginArray();
  for (int64_t c : concepts) w.Int(c);
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string UpdateLine(const std::string& student, int64_t question,
                       const std::vector<int64_t>& concepts, int response) {
  serve::JsonWriter w;
  w.BeginObject();
  w.Key("op").String("update");
  w.Key("student").String(student);
  w.Key("question").Int(question);
  w.Key("concepts").BeginArray();
  for (int64_t c : concepts) w.Int(c);
  w.EndArray();
  w.Key("response").Int(response);
  w.EndObject();
  return w.str();
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[1 << 16];
  size_t n;
  out->clear();
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

double Percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

struct LatencyStats {
  double p50_us = 0.0, p99_us = 0.0, mean_us = 0.0;
  int64_t count = 0;
};

LatencyStats Summarize(std::vector<double>& us) {
  LatencyStats stats;
  stats.count = static_cast<int64_t>(us.size());
  if (us.empty()) return stats;
  std::sort(us.begin(), us.end());
  double total = 0.0;
  for (double v : us) total += v;
  stats.mean_us = total / static_cast<double>(us.size());
  stats.p50_us = Percentile(us, 0.50);
  stats.p99_us = Percentile(us, 0.99);
  return stats;
}

int CmdReplay(const FlagParser& flags, int port, int connections) {
  const std::string data_path = flags.GetString("data", "");
  if (data_path.empty()) {
    std::fprintf(stderr, "replay: --data is required\n");
    return 2;
  }
  auto dataset = data::LoadCsv(data_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const data::Dataset windows = data::SplitIntoWindows(
      dataset.value(), flags.GetInt("window", 50),
      flags.GetInt("min-length", 5));

  int64_t stride = flags.GetInt("stride", 4);
  int64_t min_target = flags.GetInt("min-target", 4);

  // Expected probabilities keyed by (sequence, target), as float bits.
  std::map<std::pair<int64_t, int64_t>, float> expected;
  const std::string expect_path = flags.GetString("expect", "");
  if (!expect_path.empty()) {
    std::string text;
    if (!ReadFile(expect_path, &text)) {
      std::fprintf(stderr, "replay: cannot read %s\n", expect_path.c_str());
      return 1;
    }
    serve::JsonValue doc;
    std::string error;
    if (!serve::ParseJson(text, &doc, &error)) {
      std::fprintf(stderr, "replay: %s: %s\n", expect_path.c_str(),
                   error.c_str());
      return 1;
    }
    stride = doc.GetInt("stride", stride);
    min_target = doc.GetInt("min_target", min_target);
    const serve::JsonValue* preds = doc.Find("predictions");
    if (preds == nullptr || !preds->IsArray()) {
      std::fprintf(stderr, "replay: %s has no predictions array\n",
                   expect_path.c_str());
      return 1;
    }
    for (const auto& p : preds->array) {
      expected[{p.GetInt("sequence", -1), p.GetInt("target", -1)}] =
          static_cast<float>(p.GetNumber("generator_score", 0.0));
    }
  }

  // The same samples the offline scorer enumerates; grouped per sequence.
  const auto samples = rckt::MakePrefixSamples(windows, stride, min_target);
  std::vector<std::vector<int64_t>> targets(windows.sequences.size());
  for (const auto& sample : samples) {
    const int64_t seq = sample.sequence - windows.sequences.data();
    targets[static_cast<size_t>(seq)].push_back(sample.target);
  }
  for (auto& t : targets) std::sort(t.begin(), t.end());

  std::mutex mu;
  std::map<std::pair<int64_t, int64_t>, float> got;
  std::vector<double> latencies_us;
  std::vector<std::string> failures;
  std::vector<std::thread> workers;
  const int num_workers =
      std::max(1, std::min(connections,
                           static_cast<int>(windows.sequences.size())));
  for (int w = 0; w < num_workers; ++w) {
    workers.emplace_back([&, w] {
      Client client;
      std::string error;
      if (!client.Connect(port, &error)) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back(error);
        return;
      }
      std::map<std::pair<int64_t, int64_t>, float> local_got;
      std::vector<double> local_us;
      std::string response;
      for (size_t i = static_cast<size_t>(w); i < windows.sequences.size();
           i += static_cast<size_t>(num_workers)) {
        const auto& seq = windows.sequences[i];
        const std::string student = "s" + std::to_string(i);
        const auto& seq_targets = targets[i];
        size_t next_target = 0;
        for (int64_t t = 0; t < seq.length(); ++t) {
          const auto& it = seq.interactions[static_cast<size_t>(t)];
          if (next_target < seq_targets.size() &&
              seq_targets[next_target] == t) {
            ++next_target;
            const auto start = std::chrono::steady_clock::now();
            if (!client.RoundTrip(
                    PredictLine(student, it.question, it.concepts),
                    &response, &error)) {
              std::lock_guard<std::mutex> lock(mu);
              failures.push_back(error);
              return;
            }
            const auto stop = std::chrono::steady_clock::now();
            local_us.push_back(
                std::chrono::duration<double, std::micro>(stop - start)
                    .count());
            serve::JsonValue reply;
            if (!serve::ParseJson(response, &reply, &error) ||
                !reply.GetBool("ok", false)) {
              std::lock_guard<std::mutex> lock(mu);
              failures.push_back("bad predict reply: " + response);
              return;
            }
            local_got[{static_cast<int64_t>(i), t}] =
                static_cast<float>(reply.GetNumber("p", NAN));
          }
          if (!client.RoundTrip(
                  UpdateLine(student, it.question, it.concepts, it.response),
                  &response, &error)) {
            std::lock_guard<std::mutex> lock(mu);
            failures.push_back(error);
            return;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      got.insert(local_got.begin(), local_got.end());
      latencies_us.insert(latencies_us.end(), local_us.begin(),
                          local_us.end());
    });
  }
  const auto start = std::chrono::steady_clock::now();
  for (auto& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& f : failures) std::fprintf(stderr, "replay: %s\n",
                                              f.c_str());
  if (!failures.empty()) return 1;

  // Bitwise comparison against the offline scorer's generator_score.
  int64_t mismatches = 0, missing = 0;
  for (const auto& [key, want] : expected) {
    const auto found = got.find(key);
    if (found == got.end()) {
      ++missing;
      continue;
    }
    if (FloatBits(found->second) != FloatBits(want)) {
      if (++mismatches <= 5) {
        std::fprintf(stderr,
                     "replay: MISMATCH seq=%lld target=%lld online=%.9g "
                     "offline=%.9g\n",
                     static_cast<long long>(key.first),
                     static_cast<long long>(key.second), found->second, want);
      }
    }
  }

  LatencyStats stats = Summarize(latencies_us);
  serve::JsonWriter w;
  w.BeginObject();
  w.Key("mode").String("replay");
  w.Key("connections").Int(num_workers);
  w.Key("predictions").Int(static_cast<int64_t>(got.size()));
  w.Key("compared").Int(static_cast<int64_t>(expected.size()));
  w.Key("mismatches").Int(mismatches);
  w.Key("missing").Int(missing);
  w.Key("elapsed_s").Double(elapsed);
  w.Key("latency_p50_us").Double(stats.p50_us);
  w.Key("latency_p99_us").Double(stats.p99_us);
  w.Key("latency_mean_us").Double(stats.mean_us);
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
  return (mismatches == 0 && missing == 0) ? 0 : 1;
}

int CmdBench(const FlagParser& flags, int port, int connections) {
  const int64_t requests = flags.GetInt("requests", 200);
  const int64_t questions = flags.GetInt("questions", 100);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  std::mutex mu;
  std::vector<double> latencies_us;
  std::vector<std::string> failures;
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < std::max(1, connections); ++w) {
    workers.emplace_back([&, w] {
      Client client;
      std::string error;
      if (!client.Connect(port, &error)) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back(error);
        return;
      }
      Rng rng(seed + static_cast<uint64_t>(w) * 7919);
      const std::string student = "load-" + std::to_string(w);
      const std::vector<int64_t> no_concepts;
      std::vector<double> local_us;
      std::string response;
      for (int64_t r = 0; r < requests; ++r) {
        const int64_t question =
            rng.UniformInt(std::max<int64_t>(1, questions));
        const bool predict = (r % 2) == 0;
        const std::string line =
            predict ? PredictLine(student, question, no_concepts)
                    : UpdateLine(student, question, no_concepts,
                                 static_cast<int>(rng.NextU64() & 1));
        const auto t0 = std::chrono::steady_clock::now();
        if (!client.RoundTrip(line, &response, &error)) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(error);
          return;
        }
        const auto t1 = std::chrono::steady_clock::now();
        local_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        serve::JsonValue reply;
        if (!serve::ParseJson(response, &reply, &error) ||
            !reply.GetBool("ok", false)) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back("bad reply: " + response);
          return;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_us.insert(latencies_us.end(), local_us.begin(),
                          local_us.end());
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& f : failures) std::fprintf(stderr, "bench: %s\n",
                                              f.c_str());
  if (!failures.empty()) return 1;

  LatencyStats stats = Summarize(latencies_us);
  serve::JsonWriter w;
  w.BeginObject();
  w.Key("mode").String("bench");
  w.Key("connections").Int(connections);
  w.Key("requests").Int(stats.count);
  w.Key("elapsed_s").Double(elapsed);
  w.Key("throughput_rps")
      .Double(elapsed > 0.0 ? static_cast<double>(stats.count) / elapsed
                            : 0.0);
  w.Key("latency_p50_us").Double(stats.p50_us);
  w.Key("latency_p99_us").Double(stats.p99_us);
  w.Key("latency_mean_us").Double(stats.mean_us);
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  // Parse consumes argv[1..argc) — no subcommand word to skip here.
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "kt_loadgen: --port is required\n");
    return 2;
  }
  const int connections = static_cast<int>(flags.GetInt("connections", 1));
  const std::string mode = flags.GetString("mode", "replay");
  if (mode == "replay") return CmdReplay(flags, port, connections);
  if (mode == "bench") return CmdBench(flags, port, connections);
  std::fprintf(stderr, "kt_loadgen: unknown --mode '%s' (replay|bench)\n",
               mode.c_str());
  return 2;
}

}  // namespace
}  // namespace kt

int main(int argc, char** argv) { return kt::Main(argc, argv); }
