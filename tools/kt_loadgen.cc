// kt_loadgen — load generator / replay client for `ktcli serve`.
//
// Modes (--mode):
//   replay  (default) Replays a CSV dataset against a running server: every
//           student's interactions become update ops on session "s<i>", and
//           at every offline evaluation target (the same positions `ktcli
//           evaluate --json` scores: MakePrefixSamples(stride, min_target))
//           a predict op fires BEFORE the update, so the server sees exactly
//           the history the offline scorer saw. With --expect FILE (the
//           JSON object written by `ktcli evaluate --json`) every online
//           probability is compared BIT-FOR-BIT against the offline
//           generator_score; any mismatch fails the run (exit 1). The
//           stride/min_target are read from the expect file so the two
//           sides can never disagree about which samples exist.
//   bench   Closed-loop throughput/latency benchmark: --connections threads
//           each drive their own session with alternating update/predict
//           ops on random questions for --requests requests.
//   scenario Open-loop scenario traffic from the workload registry
//           (data/scenarios.h; DESIGN.md §12). Students are generated
//           STREAMING, one at a time per worker via GenerateStudentAuto —
//           never materializing the dataset — so --students can go to a
//           million and beyond in constant memory. The traffic content is
//           open-loop: the simulator decides every response from its latent
//           student model, independent of what the server predicts. Each
//           interaction fires predict-then-update; predict probabilities
//           against the simulated outcomes feed a rolling online AUC
//           (last --auc-window pairs per worker), and per-op latencies feed
//           kt::obs histograms (loadgen.predict_us / loadgen.update_us), so
//           the JSON report carries p50/p99 at bucket resolution without
//           per-request storage. The report's traffic_fnv64 digests the
//           generated stream: equal across runs iff the scenario is
//           seed-deterministic. pred_fnv64 digests the server's predict
//           probabilities the same way, so two servers (e.g. --shards 1
//           vs --shards 8) can be compared for bitwise parity. With
//           --windows W the student range splits into W contiguous
//           drift phases replayed back-to-back: each gets a fresh
//           rolling-AUC ring and a post-phase `stats` poll recording the
//           serving model's weight fingerprint + version, so a server
//           running `ktcli serve --continual` shows the hot swap (and
//           its AUC effect) directly in the report's windows array.
//   recourse Counterfactual-recourse traffic: per CSV sequence, every
//           interaction but the last becomes a history update, then one
//           recourse op fires on the final question. The summary carries
//           recourse latency percentiles, the mean best-candidate lift,
//           and recourse_fnv64 — a digest of every reply's base_p bits,
//           candidate ranking and intervention list. Two servers given
//           the same traffic agree on the digest iff every recourse
//           reply is bitwise identical, which is how check_serve.sh
//           gates the stacked fast path against --brute and --shards 1
//           against --shards 4.
//
// All modes print a one-line JSON summary to stdout (schemas in
// src/serve/loadgen.h; `obs_check scenario` validates and gates the
// scenario one). The server must be listening on 127.0.0.1:--port (start it
// with `ktcli serve --load m.ktw --port P`).
//
// Flags:
//   --port P            server TCP port (required)
//   --mode replay|bench|scenario
//   --connections N     concurrent client connections (default 1)
//   replay:   --data data.csv [--expect eval.json] [--window 50]
//             [--min-length 5] [--stride 4] [--min-target 4]
//             [--expect-tol 0.0  accept |online-offline| <= tol instead of
//              bitwise equality; for servers running --precision bf16/int8]
//   bench:    [--requests 200 per connection] [--questions 100] [--seed 1]
//   scenario: --scenario NAME [--students N] [--scale S] [--seed N]
//             [--auc-window 50000] [--windows 1  drift phases]
//   recourse: --data data.csv [--window 50] [--min-length 5] [--k 2]
//             [--top 3] [--target-p -1] [--brute]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "data/io.h"
#include "data/scenarios.h"
#include "data/simulator.h"
#include "eval/metrics.h"
#include "obs/obs.h"
#include "rckt/samples.h"
#include "serve/json.h"
#include "serve/loadgen.h"

namespace kt {
namespace {

using serve::LineClient;

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[1 << 16];
  size_t n;
  out->clear();
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

int CmdReplay(const FlagParser& flags, int port, int connections) {
  const std::string data_path = flags.GetString("data", "");
  if (data_path.empty()) {
    std::fprintf(stderr, "replay: --data is required\n");
    return 2;
  }
  auto dataset = data::LoadCsv(data_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const data::Dataset windows = data::SplitIntoWindows(
      dataset.value(), flags.GetInt("window", 50),
      flags.GetInt("min-length", 5));

  // Expected probabilities keyed by (sequence, target), as float bits.
  serve::ExpectedPredictions expected;
  expected.stride = flags.GetInt("stride", 4);
  expected.min_target = flags.GetInt("min-target", 4);
  const std::string expect_path = flags.GetString("expect", "");
  if (!expect_path.empty()) {
    std::string text;
    if (!ReadFile(expect_path, &text)) {
      std::fprintf(stderr, "replay: cannot read %s\n", expect_path.c_str());
      return 1;
    }
    auto parsed = serve::ParseExpectedPredictions(text, expected.stride,
                                                  expected.min_target);
    if (!parsed.ok()) {
      std::fprintf(stderr, "replay: %s: %s\n", expect_path.c_str(),
                   parsed.status().message().c_str());
      return 1;
    }
    expected = std::move(parsed).value();
  }

  // The same samples the offline scorer enumerates; grouped per sequence.
  const auto samples =
      rckt::MakePrefixSamples(windows, expected.stride, expected.min_target);
  std::vector<std::vector<int64_t>> targets(windows.sequences.size());
  for (const auto& sample : samples) {
    const int64_t seq = sample.sequence - windows.sequences.data();
    targets[static_cast<size_t>(seq)].push_back(sample.target);
  }
  for (auto& t : targets) std::sort(t.begin(), t.end());

  std::mutex mu;
  serve::PredictionMap got;
  std::vector<float> auc_scores;
  std::vector<int> auc_labels;
  std::vector<double> latencies_us;
  std::vector<std::string> failures;
  std::vector<std::thread> workers;
  const int num_workers =
      std::max(1, std::min(connections,
                           static_cast<int>(windows.sequences.size())));
  for (int w = 0; w < num_workers; ++w) {
    workers.emplace_back([&, w] {
      LineClient client;
      std::string error;
      if (!client.Connect(port, &error)) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back(error);
        return;
      }
      serve::PredictionMap local_got;
      std::vector<float> local_scores;
      std::vector<int> local_labels;
      std::vector<double> local_us;
      std::string response;
      for (size_t i = static_cast<size_t>(w); i < windows.sequences.size();
           i += static_cast<size_t>(num_workers)) {
        const auto& seq = windows.sequences[i];
        const std::string student = "s" + std::to_string(i);
        const auto& seq_targets = targets[i];
        size_t next_target = 0;
        for (int64_t t = 0; t < seq.length(); ++t) {
          const auto& it = seq.interactions[static_cast<size_t>(t)];
          if (next_target < seq_targets.size() &&
              seq_targets[next_target] == t) {
            ++next_target;
            const auto start = std::chrono::steady_clock::now();
            if (!client.RoundTrip(
                    serve::PredictLine(student, it.question, it.concepts),
                    &response, &error)) {
              std::lock_guard<std::mutex> lock(mu);
              failures.push_back(error);
              return;
            }
            const auto stop = std::chrono::steady_clock::now();
            local_us.push_back(
                std::chrono::duration<double, std::micro>(stop - start)
                    .count());
            serve::JsonValue reply;
            if (!serve::ParseJson(response, &reply, &error) ||
                !reply.GetBool("ok", false)) {
              std::lock_guard<std::mutex> lock(mu);
              failures.push_back("bad predict reply: " + response);
              return;
            }
            const float p = static_cast<float>(reply.GetNumber("p", NAN));
            local_got[{static_cast<int64_t>(i), t}] = p;
            local_scores.push_back(p);
            local_labels.push_back(it.response);
          }
          if (!client.RoundTrip(serve::UpdateLine(student, it.question,
                                                  it.concepts, it.response),
                                &response, &error)) {
            std::lock_guard<std::mutex> lock(mu);
            failures.push_back(error);
            return;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      got.insert(local_got.begin(), local_got.end());
      auc_scores.insert(auc_scores.end(), local_scores.begin(),
                        local_scores.end());
      auc_labels.insert(auc_labels.end(), local_labels.begin(),
                        local_labels.end());
      latencies_us.insert(latencies_us.end(), local_us.begin(),
                          local_us.end());
    });
  }
  const auto start = std::chrono::steady_clock::now();
  for (auto& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& f : failures) std::fprintf(stderr, "replay: %s\n",
                                              f.c_str());
  if (!failures.empty()) return 1;

  // Comparison against the offline scorer's generator_score: bitwise by
  // default, |diff| <= --expect-tol when the server runs a low-precision
  // predict head (scripts/check_precision.sh).
  serve::ReplaySummary summary;
  summary.check = serve::CheckPredictions(
      expected.scores, got, /*max_details=*/5,
      flags.GetDouble("expect-tol", 0.0));
  for (const auto& d : summary.check.details) {
    std::fprintf(stderr, "replay: %s\n", d.c_str());
  }
  summary.connections = num_workers;
  summary.predictions = static_cast<int64_t>(got.size());
  // eval::ComputeAuc is permutation-invariant, so the worker merge order
  // cannot move the online AUC.
  summary.auc_samples = static_cast<int64_t>(auc_scores.size());
  summary.auc =
      auc_scores.empty() ? 0.5 : eval::ComputeAuc(auc_scores, auc_labels);
  summary.elapsed_s = elapsed;
  summary.latency = serve::SummarizeLatencies(latencies_us);
  std::printf("%s\n", serve::ReplaySummaryJson(summary).c_str());
  return summary.check.ok() ? 0 : 1;
}

// Recourse traffic: per CSV sequence, reset the student (so reruns
// against one warm server see identical histories), feed every
// interaction but the last as history updates, then ask for
// counterfactual recourse on the final question. Reports recourse latency, the mean best-candidate
// lift, and an order-independent digest of every reply (base_p bits,
// candidate ranking, every intervention) — the parity key
// scripts/check_serve.sh compares fast-vs---brute and across --shards.
int CmdRecourse(const FlagParser& flags, int port, int connections) {
  const std::string data_path = flags.GetString("data", "");
  if (data_path.empty()) {
    std::fprintf(stderr, "recourse: --data is required\n");
    return 2;
  }
  auto dataset = data::LoadCsv(data_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const data::Dataset windows = data::SplitIntoWindows(
      dataset.value(), flags.GetInt("window", 50),
      flags.GetInt("min-length", 5));
  const int k = static_cast<int>(flags.GetInt("k", 2));
  const int top = static_cast<int>(flags.GetInt("top", 3));
  const double target_p = flags.GetDouble("target-p", -1.0);
  const bool brute = flags.GetBool("brute", false);

  std::mutex mu;
  std::vector<double> latencies_us;
  std::vector<std::string> failures;
  uint64_t recourse_fnv64 = 0;
  int64_t updates = 0, recourses = 0, candidates = 0;
  double top_lift_sum = 0.0;
  int64_t top_lift_count = 0;
  std::vector<std::thread> workers;
  const int num_workers =
      std::max(1, std::min(connections,
                           static_cast<int>(windows.sequences.size())));
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < num_workers; ++w) {
    workers.emplace_back([&, w] {
      LineClient client;
      std::string error;
      if (!client.Connect(port, &error)) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back(error);
        return;
      }
      std::vector<double> local_us;
      uint64_t local_fnv = 0;
      int64_t local_updates = 0, local_recourses = 0, local_candidates = 0;
      double local_lift_sum = 0.0;
      int64_t local_lift_count = 0;
      std::string response;
      for (size_t i = static_cast<size_t>(w); i < windows.sequences.size();
           i += static_cast<size_t>(num_workers)) {
        const auto& seq = windows.sequences[i];
        if (seq.length() < 2) continue;
        const std::string student = "r" + std::to_string(i);
        if (!client.RoundTrip(serve::ResetLine(student), &response, &error)) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(error);
          return;
        }
        for (int64_t t = 0; t + 1 < seq.length(); ++t) {
          const auto& it = seq.interactions[static_cast<size_t>(t)];
          if (!client.RoundTrip(serve::UpdateLine(student, it.question,
                                                  it.concepts, it.response),
                                &response, &error)) {
            std::lock_guard<std::mutex> lock(mu);
            failures.push_back(error);
            return;
          }
          ++local_updates;
        }
        const auto& last =
            seq.interactions[static_cast<size_t>(seq.length() - 1)];
        const auto t0 = std::chrono::steady_clock::now();
        if (!client.RoundTrip(
                serve::RecourseLine(student, last.question, last.concepts, k,
                                    top, target_p, {}, brute),
                &response, &error)) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(error);
          return;
        }
        const auto t1 = std::chrono::steady_clock::now();
        local_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        serve::JsonValue reply;
        if (!serve::ParseJson(response, &reply, &error) ||
            !reply.GetBool("ok", false)) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back("bad recourse reply: " + response);
          return;
        }
        ++local_recourses;
        local_fnv ^= serve::FnvMixRecourseReply(serve::kFnvOffset, reply);
        if (const serve::JsonValue* cands = reply.Find("candidates")) {
          if (cands->IsArray() && !cands->array.empty()) {
            local_candidates += static_cast<int64_t>(cands->array.size());
            local_lift_sum += cands->array[0].GetNumber("lift", 0.0);
            ++local_lift_count;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_us.insert(latencies_us.end(), local_us.begin(),
                          local_us.end());
      recourse_fnv64 ^= local_fnv;
      updates += local_updates;
      recourses += local_recourses;
      candidates += local_candidates;
      top_lift_sum += local_lift_sum;
      top_lift_count += local_lift_count;
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& f : failures) std::fprintf(stderr, "recourse: %s\n",
                                              f.c_str());
  if (!failures.empty()) return 1;

  serve::RecourseSummary summary;
  summary.connections = num_workers;
  summary.students = static_cast<int64_t>(windows.sequences.size());
  summary.updates = updates;
  summary.recourses = recourses;
  summary.candidates = candidates;
  summary.mean_top_lift =
      top_lift_count > 0 ? top_lift_sum / static_cast<double>(top_lift_count)
                         : 0.0;
  summary.brute = brute;
  summary.elapsed_s = elapsed;
  summary.latency = serve::SummarizeLatencies(latencies_us);
  summary.recourse_fnv64 = recourse_fnv64;
  std::printf("%s\n", serve::RecourseSummaryJson(summary).c_str());
  return 0;
}

int CmdBench(const FlagParser& flags, int port, int connections) {
  const int64_t requests = flags.GetInt("requests", 200);
  const int64_t questions = flags.GetInt("questions", 100);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  std::mutex mu;
  std::vector<double> latencies_us;
  std::vector<std::string> failures;
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < std::max(1, connections); ++w) {
    workers.emplace_back([&, w] {
      LineClient client;
      std::string error;
      if (!client.Connect(port, &error)) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back(error);
        return;
      }
      Rng rng(seed + static_cast<uint64_t>(w) * 7919);
      const std::string student = "load-" + std::to_string(w);
      const std::vector<int64_t> no_concepts;
      std::vector<double> local_us;
      std::string response;
      for (int64_t r = 0; r < requests; ++r) {
        const int64_t question =
            rng.UniformInt(std::max<int64_t>(1, questions));
        const bool predict = (r % 2) == 0;
        const std::string line =
            predict ? serve::PredictLine(student, question, no_concepts)
                    : serve::UpdateLine(student, question, no_concepts,
                                        static_cast<int>(rng.NextU64() & 1));
        const auto t0 = std::chrono::steady_clock::now();
        if (!client.RoundTrip(line, &response, &error)) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(error);
          return;
        }
        const auto t1 = std::chrono::steady_clock::now();
        local_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        serve::JsonValue reply;
        if (!serve::ParseJson(response, &reply, &error) ||
            !reply.GetBool("ok", false)) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back("bad reply: " + response);
          return;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_us.insert(latencies_us.end(), local_us.begin(),
                          local_us.end());
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& f : failures) std::fprintf(stderr, "bench: %s\n",
                                              f.c_str());
  if (!failures.empty()) return 1;

  serve::BenchSummary summary;
  summary.connections = connections;
  summary.elapsed_s = elapsed;
  summary.latency = serve::SummarizeLatencies(latencies_us);
  std::printf("%s\n", serve::BenchSummaryJson(summary).c_str());
  return 0;
}

// Polls {"op":"stats"} once and extracts the serving model identity from
// the reply's "model" section. Returns false (leaving outputs untouched)
// when the server is unreachable or predates the section.
bool PollModelIdentity(int port, std::string* fingerprint, int64_t* version) {
  LineClient client;
  std::string error, response;
  if (!client.Connect(port, &error)) return false;
  if (!client.RoundTrip("{\"op\":\"stats\"}", &response, &error)) return false;
  serve::JsonValue reply;
  if (!serve::ParseJson(response, &reply, &error) ||
      !reply.GetBool("ok", false)) {
    return false;
  }
  const serve::JsonValue* model = reply.Find("model");
  if (model == nullptr || !model->IsObject()) return false;
  *fingerprint = model->GetString("fingerprint", "");
  *version = model->GetInt("weight_version", 0);
  return true;
}

int CmdScenario(const FlagParser& flags, int port, int connections) {
  const std::string name = flags.GetString("scenario", "");
  auto resolved = data::ScenarioByName(name, flags.GetDouble("scale", 1.0));
  if (!resolved.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 resolved.status().message().c_str());
    return 2;
  }
  data::SimulatorConfig config = std::move(resolved).value();
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", config.seed));
  const int64_t students = flags.GetInt("students", config.num_students);
  const int64_t auc_window = flags.GetInt("auc-window", 50000);
  if (students <= 0) {
    std::fprintf(stderr, "scenario: --students must be positive\n");
    return 2;
  }
  // Drift-replay phases: the student range splits into --windows contiguous
  // chunks replayed back-to-back, each scored with a fresh rolling-AUC ring
  // and followed by a stats poll recording the serving model's identity.
  // The per-student traffic is identical for any --windows value, and the
  // XOR-combined digests are order-independent, so traffic_fnv64 is
  // invariant across --windows (and --connections) for a fixed seed.
  const int64_t num_windows = std::max<int64_t>(
      1, std::min<int64_t>(flags.GetInt("windows", 1), students));

  // The simulator builds its question bank once; per-student sequences are
  // then generated on demand inside each worker (streaming, O(1) memory in
  // --students), bit-identical to what `ktcli simulate --scenario` writes.
  const data::StudentSimulator simulator(config);

  // Latency histograms: bucket-resolution percentiles at any request count.
  obs::SetEnabled(true);
  obs::Histogram* predict_hist = obs::Histogram::Get("loadgen.predict_us");
  obs::Histogram* update_hist = obs::Histogram::Get("loadgen.update_us");
  predict_hist->Reset();
  update_hist->Reset();

  std::mutex mu;
  std::vector<std::string> failures;
  serve::RollingAuc merged_auc(auc_window);
  uint64_t traffic_fnv64 = 0, pred_fnv64 = 0;
  int64_t interactions = 0, predictions = 0;
  std::vector<serve::ScenarioWindow> window_stats;
  const auto start = std::chrono::steady_clock::now();
  for (int64_t win = 0; win < num_windows; ++win) {
    const int64_t lo = win * students / num_windows;
    const int64_t hi = (win + 1) * students / num_windows;
    if (hi <= lo) continue;
    const int num_workers = static_cast<int>(
        std::max<int64_t>(1, std::min<int64_t>(connections, hi - lo)));
    serve::RollingAuc window_auc(auc_window);
    std::vector<std::thread> workers;
    for (int w = 0; w < num_workers; ++w) {
      workers.emplace_back([&, w] {
        LineClient client;
        std::string error;
        if (!client.Connect(port, &error)) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(error);
          return;
        }
        // Per-worker ring + digest: merged under the lock after the loop.
        // Worker w owns students lo+w, lo+w+num_workers, ... — a
        // deterministic partition, so the merged AUC and XORed digest are
        // reproducible for a fixed --connections (and the digest for ANY
        // --connections).
        serve::RollingAuc local_auc(auc_window);
        uint64_t local_fnv = 0, local_pred_fnv = 0;
        int64_t local_interactions = 0, local_predictions = 0;
        std::string response;
        for (int64_t s = lo + w; s < hi; s += num_workers) {
          const data::ResponseSequence seq =
              simulator.GenerateStudentAuto(static_cast<uint64_t>(s));
          const std::string student =
              config.name + "-s" + std::to_string(s);
          uint64_t h = serve::kFnvOffset;
          uint64_t ph = serve::kFnvOffset;  // this student's prediction bits
          for (const auto& it : seq.interactions) {
            const auto t0 = std::chrono::steady_clock::now();
            if (!client.RoundTrip(
                    serve::PredictLine(student, it.question, it.concepts),
                    &response, &error)) {
              std::lock_guard<std::mutex> lock(mu);
              failures.push_back(error);
              return;
            }
            const auto t1 = std::chrono::steady_clock::now();
            predict_hist->Record(
                std::chrono::duration<double, std::micro>(t1 - t0).count());
            serve::JsonValue reply;
            if (!serve::ParseJson(response, &reply, &error) ||
                !reply.GetBool("ok", false)) {
              std::lock_guard<std::mutex> lock(mu);
              failures.push_back("bad predict reply: " + response);
              return;
            }
            ++local_predictions;
            const float p = static_cast<float>(reply.GetNumber("p", NAN));
            local_auc.Add(p, it.response);
            ph = serve::FnvMixU64(ph, serve::FloatBits(p));

            const auto t2 = std::chrono::steady_clock::now();
            if (!client.RoundTrip(serve::UpdateLine(student, it.question,
                                                    it.concepts, it.response),
                                  &response, &error)) {
              std::lock_guard<std::mutex> lock(mu);
              failures.push_back(error);
              return;
            }
            const auto t3 = std::chrono::steady_clock::now();
            update_hist->Record(
                std::chrono::duration<double, std::micro>(t3 - t2).count());
            ++local_interactions;
            h = serve::FnvMixInteraction(h, it.question, it.concepts,
                                         it.response);
          }
          local_fnv ^= h;
          local_pred_fnv ^= ph;
        }
        std::lock_guard<std::mutex> lock(mu);
        window_auc.Merge(local_auc);
        traffic_fnv64 ^= local_fnv;
        pred_fnv64 ^= local_pred_fnv;
        interactions += local_interactions;
        predictions += local_predictions;
      });
    }
    for (auto& worker : workers) worker.join();
    for (const auto& f : failures) std::fprintf(stderr, "scenario: %s\n",
                                                f.c_str());
    if (!failures.empty()) return 1;
    merged_auc.Merge(window_auc);
    if (num_windows > 1) {
      serve::ScenarioWindow ws;
      ws.index = win;
      ws.students = hi - lo;
      ws.auc = window_auc.Auc();
      ws.auc_samples = window_auc.count();
      if (!PollModelIdentity(port, &ws.model_fingerprint,
                             &ws.weight_version)) {
        std::fprintf(stderr,
                     "scenario: warning: stats poll failed after window %lld\n",
                     static_cast<long long>(win));
      }
      window_stats.push_back(std::move(ws));
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  serve::ScenarioSummary summary;
  if (!window_stats.empty()) {
    // Reuse the last window's poll; the run just ended, so it IS current.
    summary.model_fingerprint = window_stats.back().model_fingerprint;
    summary.weight_version = window_stats.back().weight_version;
  } else {
    PollModelIdentity(port, &summary.model_fingerprint,
                      &summary.weight_version);
  }
  summary.window_stats = std::move(window_stats);
  summary.scenario = config.name;
  summary.connections = static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(connections, students)));
  summary.seed = config.seed;
  summary.scale = flags.GetDouble("scale", 1.0);
  summary.students = students;
  summary.interactions = interactions;
  summary.predictions = predictions;
  summary.elapsed_s = elapsed;
  summary.throughput_rps =
      elapsed > 0.0
          ? static_cast<double>(interactions + predictions) / elapsed
          : 0.0;
  summary.auc = merged_auc.Auc();
  summary.auc_samples = merged_auc.count();
  summary.auc_window = auc_window;
  const obs::HistogramSnapshot predict_snap = predict_hist->Snapshot();
  const obs::HistogramSnapshot update_snap = update_hist->Snapshot();
  summary.predict_p50_us = predict_snap.Percentile(0.50);
  summary.predict_p99_us = predict_snap.Percentile(0.99);
  summary.predict_mean_us = predict_snap.Mean();
  summary.update_p50_us = update_snap.Percentile(0.50);
  summary.update_p99_us = update_snap.Percentile(0.99);
  summary.update_mean_us = update_snap.Mean();
  summary.traffic_fnv64 = traffic_fnv64;
  summary.pred_fnv64 = pred_fnv64;
  std::printf("%s\n", serve::ScenarioSummaryJson(summary).c_str());
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  // Parse consumes argv[1..argc) — no subcommand word to skip here.
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "kt_loadgen: --port is required\n");
    return 2;
  }
  const int connections = static_cast<int>(flags.GetInt("connections", 1));
  const std::string mode = flags.GetString("mode", "replay");
  if (mode == "replay") return CmdReplay(flags, port, connections);
  if (mode == "bench") return CmdBench(flags, port, connections);
  if (mode == "scenario") return CmdScenario(flags, port, connections);
  if (mode == "recourse") return CmdRecourse(flags, port, connections);
  std::fprintf(
      stderr,
      "kt_loadgen: unknown --mode '%s' (replay|bench|scenario|recourse)\n",
      mode.c_str());
  return 2;
}

}  // namespace
}  // namespace kt

int main(int argc, char** argv) { return kt::Main(argc, argv); }
