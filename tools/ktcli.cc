// ktcli — command-line interface to the RCKT library.
//
// Subcommands:
//   simulate  --preset NAME | --scenario NAME [--scale S] [--seed N]
//             --out data.csv
//             Generate a synthetic dataset and write it as CSV. --preset
//             picks a paper-dataset stand-in, --scenario a serving
//             workload from the scenario registry (DESIGN.md §12).
//             Unknown names list the valid ones.
//   train     --data data.csv --encoder dkt|sakt|akt|gru [--epochs N]
//             [--dim D] [--lambda L] [--save model.ktw]
//             [--checkpoint-every N --checkpoint ckpt.ktc]
//             [--resume ckpt.ktc]
//             Train RCKT with early stopping; print test AUC/ACC.
//   evaluate  --data data.csv --load model.ktw [--json] [--stride N]
//             Evaluate a saved model on a dataset. --json replaces the
//             one-line summary with a machine-readable JSON object holding
//             the metrics plus every per-sample prediction (consumed by
//             kt_loadgen --expect and scripts/check_serve.sh).
//   explain   --data data.csv --load model.ktw
//             [--student I] [--target T]
//             Print the influence breakdown behind one prediction.
//   recourse  --data data.csv --load model.ktw
//             [--student I] [--target T] [--k 2] [--top 3]
//             [--target-p P] [--insert q1,q2] [--brute]
//             Counterfactual recourse for one prediction: search over
//             flipping past incorrect responses and inserting correct
//             practice (candidate sets up to --k interventions; inserted
//             questions from --insert, defaulting to the target
//             question) and print the --top sets ranked by probability
//             lift per intervention. --target-p marks sets that reach
//             the goal probability; --brute swaps the stacked fast path
//             for one forward pass per candidate (identical output —
//             the parity gate in scripts/check_serve.sh relies on it).
//   serve     --load model.ktw [--data data.csv] [--port P] [--shards N]
//             [--max-batch N] [--max-wait-us U] [--max-queue Q]
//             [--memory-budget-mb M] [--cold-dir DIR]
//             [--precision fp32|bf16|int8] [--autotune-cache PATH]
//             Online inference server speaking newline-delimited JSON over
//             stdin/stdout (default) or TCP on 127.0.0.1:P (--port). The
//             optional --data seeds the question->concepts fallback map for
//             requests that omit explicit concept bags.
//             --precision bf16/int8 runs ONLY the predict MLP head in low
//             precision (weights packed once at load; int8 activation
//             scales calibrated from --data, which is then required);
//             updates, replay, and explanations stay bitwise fp32.
//             --autotune-cache enables the per-shape GEMM autotuner
//             (tensor/autotune.h) for the head shapes, persisting winners
//             keyed by CPU feature string at PATH.
//             --continual [--continual-dir DIR] [--train-every N]
//             [--reservoir K] [--tail K] [--holdout-every K] [--gate-eps E]
//             [--gate-min N] [--drift-threshold D] [--continual-lr LR]
//             [--continual-window W] [--continual-min-history H]
//             [--continual-batch B] [--continual-seed S]
//             [--continual-poll-ms MS]
//             Streaming continual learning (kt::continual, DESIGN.md §16):
//             committed updates feed a deterministic replay reservoir; a
//             background trainer runs mini-epochs on a candidate clone and,
//             when the candidate holds up on held-out traffic, publishes
//             DIR/current.ktw and hot-swaps the serving weights. Requires
//             --precision fp32. A restart resumes the incumbent from
//             DIR/current.ktw and the trainer from DIR/continual.ktc.
//
// Models saved by `train --save` carry a metadata chunk (encoder kind,
// dim, layers, heads, question/concept counts), so evaluate/explain/serve
// need no architecture flags. Legacy files without the chunk fall back to
// --encoder/--dim/--layers plus the --data shapes.
//
// Global flags (any subcommand):
//   --threads N   Size of the kt::parallel thread pool (default: the
//                 KT_NUM_THREADS env var, else hardware concurrency).
//                 Outputs are bit-identical for every value.
//   --gemm-kernel auto|reference|tiled|tiled_fma
//                 Process-wide GEMM dispatch override (tensor/gemm.h
//                 contract). reference/tiled preserve bit-identity;
//                 tiled_fma trades the bitwise replay contract for FMA
//                 throughput. Default auto. The resolved backend is
//                 counted per dispatch under kt::obs
//                 (gemm.backend.*.calls / .bytes) when --obs is on.
//   --checkpoint-every N / --checkpoint PATH / --resume PATH
//                 Crash-safe training checkpoints (kt::ckpt): every N
//                 epochs the full training state (parameters, Adam moments,
//                 RNG streams, progress) is committed atomically to PATH;
//                 --resume restores it and continues bit-identically to an
//                 uninterrupted run. --checkpoint defaults to the --resume
//                 path. Only `train` consumes these.
//   --obs on|off  kt::obs counter/histogram recording plus a summary on
//                 stderr at exit. Off by default; never changes a metric,
//                 loss, or checkpoint byte.
//   --trace-out PATH
//                 Write a Chrome trace-event JSON file at exit (load in
//                 chrome://tracing or Perfetto); implies --obs on.
//   --run-log PATH
//                 Append per-epoch JSONL telemetry (loss, AUC/ACC,
//                 tokens/sec, GEMM FLOPs, checkpoint latency, RSS),
//                 rewritten atomically each epoch; implies --obs on.
//
// Examples:
//   ktcli simulate --preset assist09 --scale 0.2 --out /tmp/a09.csv
//   ktcli train --data /tmp/a09.csv --encoder dkt --save /tmp/m.ktw
//   ktcli explain --data /tmp/a09.csv --encoder dkt --load /tmp/m.ktw
#include <cstdio>
#include <memory>
#include <string>

#include "continual/trainer.h"
#include "core/flags.h"
#include "data/io.h"
#include "obs/obs_flags.h"
#include "data/presets.h"
#include "data/scenarios.h"
#include "nn/serialize.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"
#include "serve/engine.h"
#include "serve/json.h"
#include "serve/server.h"
#include "tensor/autotune.h"
#include "tensor/gemm.h"

namespace kt {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ktcli <simulate|train|evaluate|explain|recourse"
               "|serve> [flags]\n"
               "see the header of tools/ktcli.cc for flag reference\n");
  return 2;
}

rckt::EncoderKind ParseEncoder(const std::string& name) {
  if (name == "dkt") return rckt::EncoderKind::kDKT;
  if (name == "sakt") return rckt::EncoderKind::kSAKT;
  if (name == "akt") return rckt::EncoderKind::kAKT;
  if (name == "gru") return rckt::EncoderKind::kGRU;
  KT_CHECK(false) << "unknown encoder '" << name
                  << "' (want dkt|sakt|akt|gru)";
  return rckt::EncoderKind::kDKT;
}

int CmdSimulate(const FlagParser& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "simulate: --out is required\n");
    return 2;
  }
  // --scenario draws from the workload-scenario registry (DESIGN.md §12);
  // --preset from the paper datasets. Unknown names list the valid ones.
  const std::string scenario = flags.GetString("scenario", "");
  const double scale = flags.GetDouble("scale", 0.2);
  Result<data::SimulatorConfig> resolved =
      scenario.empty()
          ? data::PresetByName(flags.GetString("preset", "assist09"), scale)
          : data::ScenarioByName(scenario, scale);
  if (!resolved.ok()) {
    std::fprintf(stderr, "simulate: %s\n",
                 resolved.status().message().c_str());
    return 2;
  }
  data::SimulatorConfig config = std::move(resolved).value();
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", config.seed));
  data::StudentSimulator simulator(config);
  data::Dataset dataset = simulator.Generate();
  const Status status = data::SaveCsv(dataset, out);
  if (!status.ok()) {
    std::fprintf(stderr, "simulate: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %lld interactions (%zu students, %.2f correct) to %s\n",
              static_cast<long long>(dataset.TotalResponses()),
              dataset.sequences.size(), dataset.CorrectRate(), out.c_str());
  return 0;
}

// Loads the CSV, windows it, and builds a model shaped for it.
struct LoadedData {
  data::Dataset windows;
};

int LoadData(const FlagParser& flags, LoadedData* out) {
  const std::string path = flags.GetString("data", "");
  if (path.empty()) {
    std::fprintf(stderr, "--data is required\n");
    return 2;
  }
  auto dataset = data::LoadCsv(path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  out->windows = data::SplitIntoWindows(dataset.value(),
                                        flags.GetInt("window", 50),
                                        flags.GetInt("min-length", 5));
  return 0;
}

std::unique_ptr<rckt::RCKT> BuildModel(const FlagParser& flags,
                                       const data::Dataset& windows) {
  rckt::RcktConfig config;
  config.encoder = ParseEncoder(flags.GetString("encoder", "dkt"));
  config.dim = flags.GetInt("dim", 32);
  config.num_layers = flags.GetInt("layers", 1);
  config.lambda = static_cast<float>(flags.GetDouble("lambda", 0.1));
  config.lr = static_cast<float>(flags.GetDouble("lr", 1e-3));
  config.dropout = static_cast<float>(flags.GetDouble("dropout", 0.1));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  return std::make_unique<rckt::RCKT>(windows.num_questions,
                                      windows.num_concepts, config);
}

int CmdTrain(const FlagParser& flags, const CommonFlagValues& common) {
  LoadedData loaded;
  if (int rc = LoadData(flags, &loaded)) return rc;

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(loaded.windows.sequences.size()), 5, rng);
  data::FoldSplit split =
      data::MakeFold(loaded.windows, folds, 0, 0.1, rng);

  std::unique_ptr<rckt::RCKT> model = BuildModel(flags, loaded.windows);
  rckt::RcktTrainOptions options;
  options.max_epochs = static_cast<int>(flags.GetInt("epochs", 8));
  options.patience = static_cast<int>(flags.GetInt("patience", 4));
  options.verbose = flags.GetBool("verbose", true);
  options.checkpoint_every = common.checkpoint_every;
  options.checkpoint_path = common.checkpoint_path;
  options.resume_path = common.resume_path;
  if (options.checkpoint_every > 0 && options.checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "train: --checkpoint-every needs --checkpoint (or --resume) "
                 "to name the checkpoint file\n");
    return 2;
  }
  const auto result = rckt::TrainAndEvaluateRckt(*model, split, options);
  std::printf("%s: test AUC %.4f ACC %.4f (%lld predictions)\n",
              model->name().c_str(), result.test.auc, result.test.acc,
              static_cast<long long>(result.test.num_predictions));

  const std::string save = flags.GetString("save", "");
  if (!save.empty()) {
    nn::ModelMeta meta;
    meta.encoder_kind = static_cast<int32_t>(model->config().encoder);
    meta.dim = model->config().dim;
    meta.num_layers = model->config().num_layers;
    meta.num_heads = model->config().num_heads;
    meta.num_questions = loaded.windows.num_questions;
    meta.num_concepts = loaded.windows.num_concepts;
    const Status status = nn::SaveModuleWithMeta(*model, meta, save);
    if (!status.ok()) {
      std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved model to %s\n", save.c_str());
  }
  return 0;
}

// Builds a model shaped for the weights in --load and restores them.
// Prefers the file's own metadata chunk; legacy files fall back to the
// architecture flags plus `windows` for the embedding-table shapes
// (`windows` may be null only when the file has metadata, e.g. `serve`
// without --data). On failure returns null with *rc set.
std::unique_ptr<rckt::RCKT> LoadModelAuto(const FlagParser& flags,
                                          const data::Dataset* windows,
                                          int* rc) {
  *rc = 0;
  const std::string load = flags.GetString("load", "");
  if (load.empty()) {
    std::fprintf(stderr, "--load is required\n");
    *rc = 2;
    return nullptr;
  }
  bool has_meta = false;
  nn::ModelMeta meta;
  Status status = nn::ReadModuleMeta(load, &has_meta, &meta);
  if (!status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    *rc = 1;
    return nullptr;
  }
  rckt::RcktConfig config;
  int64_t num_questions = 0;
  int64_t num_concepts = 0;
  if (has_meta) {
    if (meta.encoder_kind < 0 ||
        meta.encoder_kind > static_cast<int32_t>(rckt::EncoderKind::kGRU)) {
      std::fprintf(stderr, "load: %s: unknown encoder kind %d in metadata\n",
                   load.c_str(), meta.encoder_kind);
      *rc = 1;
      return nullptr;
    }
    config.encoder = static_cast<rckt::EncoderKind>(meta.encoder_kind);
    config.dim = meta.dim;
    config.num_layers = meta.num_layers;
    config.num_heads = meta.num_heads;
    num_questions = meta.num_questions;
    num_concepts = meta.num_concepts;
  } else if (windows != nullptr) {
    config.encoder = ParseEncoder(flags.GetString("encoder", "dkt"));
    config.dim = flags.GetInt("dim", 32);
    config.num_layers = flags.GetInt("layers", 1);
    config.num_heads = flags.GetInt("heads", 2);
    num_questions = windows->num_questions;
    num_concepts = windows->num_concepts;
  } else {
    std::fprintf(stderr,
                 "load: %s has no metadata chunk; pass --data (plus the "
                 "--encoder/--dim/--layers used at training time) or "
                 "re-save with a current `ktcli train`\n",
                 load.c_str());
    *rc = 2;
    return nullptr;
  }
  auto model =
      std::make_unique<rckt::RCKT>(num_questions, num_concepts, config);
  status = nn::LoadModule(*model, load);
  if (!status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    *rc = 1;
    return nullptr;
  }
  return model;
}

int CmdEvaluate(const FlagParser& flags) {
  LoadedData loaded;
  if (int rc = LoadData(flags, &loaded)) return rc;
  int rc = 0;
  std::unique_ptr<rckt::RCKT> model =
      LoadModelAuto(flags, &loaded.windows, &rc);
  if (model == nullptr) return rc;

  rckt::RcktTrainOptions options;
  options.eval_stride = flags.GetInt("stride", 4);
  if (flags.GetBool("json", false)) {
    const auto detailed =
        rckt::EvaluateRcktDetailed(*model, loaded.windows, options);
    serve::JsonWriter w;
    w.BeginObject();
    w.Key("model").String(model->name());
    w.Key("data").String(flags.GetString("data", ""));
    w.Key("auc").Double(detailed.metrics.auc);
    w.Key("acc").Double(detailed.metrics.acc);
    w.Key("num_predictions").Int(detailed.metrics.num_predictions);
    w.Key("stride").Int(options.eval_stride);
    w.Key("min_target").Int(options.min_target);
    w.Key("predictions").BeginArray();
    for (const auto& p : detailed.predictions) {
      w.BeginObject();
      w.Key("sequence").Int(p.sequence);
      w.Key("target").Int(p.target);
      w.Key("question").Int(p.question);
      w.Key("label").Int(p.label);
      w.Key("score").Float(p.score);
      w.Key("generator_score").Float(p.generator_score);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  const auto result = rckt::EvaluateRckt(*model, loaded.windows, options);
  std::printf("%s on %s: AUC %.4f ACC %.4f (%lld predictions)\n",
              model->name().c_str(), flags.GetString("data", "").c_str(),
              result.auc, result.acc,
              static_cast<long long>(result.num_predictions));
  return 0;
}

int CmdExplain(const FlagParser& flags) {
  LoadedData loaded;
  if (int rc = LoadData(flags, &loaded)) return rc;
  int rc = 0;
  std::unique_ptr<rckt::RCKT> model =
      LoadModelAuto(flags, &loaded.windows, &rc);
  if (model == nullptr) return rc;

  const int64_t student_index = flags.GetInt("student", 0);
  KT_CHECK(student_index >= 0 &&
           student_index <
               static_cast<int64_t>(loaded.windows.sequences.size()))
      << "--student out of range";
  const auto& seq =
      loaded.windows.sequences[static_cast<size_t>(student_index)];
  const int64_t target =
      flags.GetInt("target", seq.length() - 1);
  KT_CHECK(target >= 1 && target < seq.length()) << "--target out of range";

  data::Batch batch = rckt::MakePrefixBatch({{&seq, target}});
  const auto explanation = model->ExplainTargets(batch).front();
  std::printf("influences on q%lld at position %lld:\n",
              static_cast<long long>(
                  seq.interactions[static_cast<size_t>(target)].question),
              static_cast<long long>(target));
  for (int64_t t = 0; t < target; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    std::printf("  t=%-3lld q%-5lld %-9s %+0.4f\n",
                static_cast<long long>(t),
                static_cast<long long>(it.question),
                it.response ? "correct" : "wrong",
                explanation.influence[static_cast<size_t>(t)]);
  }
  std::printf("total correct %.4f vs incorrect %.4f -> predict %s "
              "(actual %s)\n",
              explanation.total_correct, explanation.total_incorrect,
              explanation.predicted_correct ? "correct" : "incorrect",
              seq.interactions[static_cast<size_t>(target)].response
                  ? "correct"
                  : "incorrect");
  return 0;
}

// Offline counterfactual recourse for one dataset prediction: feeds the
// prefix through a local InferenceEngine (the same code path `serve`
// uses) and prints the ranked intervention sets.
int CmdRecourse(const FlagParser& flags) {
  LoadedData loaded;
  if (int rc = LoadData(flags, &loaded)) return rc;
  int rc = 0;
  std::unique_ptr<rckt::RCKT> model =
      LoadModelAuto(flags, &loaded.windows, &rc);
  if (model == nullptr) return rc;

  const int64_t student_index = flags.GetInt("student", 0);
  KT_CHECK(student_index >= 0 &&
           student_index <
               static_cast<int64_t>(loaded.windows.sequences.size()))
      << "--student out of range";
  const auto& seq =
      loaded.windows.sequences[static_cast<size_t>(student_index)];
  const int64_t target = flags.GetInt("target", seq.length() - 1);
  KT_CHECK(target >= 0 && target < seq.length()) << "--target out of range";

  serve::EngineOptions options;
  options.num_questions =
      model->embedder().question_embedding().num_embeddings();
  options.num_concepts =
      model->embedder().concept_embedding().num_embeddings();
  serve::InferenceEngine engine(*model, options);
  for (int64_t t = 0; t < target; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    serve::ServeRequest update;
    update.op = serve::Op::kUpdate;
    update.student = "cli";
    update.question = it.question;
    update.response = it.response;
    update.has_concepts = true;
    update.concepts = it.concepts;
    KT_CHECK(engine.Execute(update).ok) << "prefix update failed";
  }

  const auto& goal = seq.interactions[static_cast<size_t>(target)];
  serve::ServeRequest request;
  request.op = serve::Op::kRecourse;
  request.student = "cli";
  request.question = goal.question;
  request.has_concepts = true;
  request.concepts = goal.concepts;
  request.k = static_cast<int>(flags.GetInt("k", 2));
  request.top = static_cast<int>(flags.GetInt("top", 3));
  request.target_p = flags.GetDouble("target-p", -1.0);
  request.brute = flags.GetBool("brute", false);
  const std::string insert = flags.GetString("insert", "");
  if (!insert.empty()) {
    request.has_insert_questions = true;
    int64_t value = 0;
    bool have = false;
    for (const char c : insert + ",") {
      if (c >= '0' && c <= '9') {
        value = value * 10 + (c - '0');
        have = true;
      } else {
        KT_CHECK(c == ',' && have) << "--insert wants q1,q2,...";
        request.insert_questions.push_back(value);
        value = 0;
        have = false;
      }
    }
  }

  const serve::ServeResponse response = engine.Execute(request);
  if (!response.ok) {
    std::fprintf(stderr, "recourse: %s\n", response.error.c_str());
    return 1;
  }
  std::printf("recourse for q%lld after %lld interactions: "
              "base p=%.4f (%lld candidate sets evaluated)\n",
              static_cast<long long>(goal.question),
              static_cast<long long>(target),
              response.base_p,
              static_cast<long long>(response.evaluated));
  for (const serve::Counterfactual& candidate : response.candidates) {
    std::printf("  p=%.4f lift=%+.4f%s", candidate.p, candidate.lift,
                candidate.reaches_target ? " [target]" : "");
    for (const serve::Intervention& intervention : candidate.interventions) {
      if (intervention.kind == serve::Intervention::Kind::kFlipResponse) {
        std::printf("  flip t=%lld (q%lld)",
                    static_cast<long long>(intervention.position),
                    static_cast<long long>(intervention.question));
      } else {
        std::printf("  insert practice q%lld",
                    static_cast<long long>(intervention.question));
      }
    }
    std::printf("\n");
  }
  return 0;
}

int CmdServe(const FlagParser& flags) {
  LoadedData loaded;
  const bool have_data = !flags.GetString("data", "").empty();
  if (have_data) {
    if (int rc = LoadData(flags, &loaded)) return rc;
  }
  int rc = 0;
  std::unique_ptr<rckt::RCKT> model =
      LoadModelAuto(flags, have_data ? &loaded.windows : nullptr, &rc);
  if (model == nullptr) return rc;

  serve::ServerOptions server_options;
  server_options.port = static_cast<int>(flags.GetInt("port", 0));
  server_options.shards = static_cast<int>(flags.GetInt("shards", 1));
  KT_CHECK(server_options.shards >= 1 && server_options.shards <= 64)
      << "--shards must be in [1, 64]";
  server_options.engine.session_budget_bytes =
      static_cast<size_t>(flags.GetInt("memory-budget-mb", 64)) << 20;
  server_options.engine.num_questions =
      model->embedder().question_embedding().num_embeddings();
  server_options.engine.num_concepts =
      model->embedder().concept_embedding().num_embeddings();
  server_options.engine.cold_dir = flags.GetString("cold-dir", "");
  server_options.batcher.max_batch = flags.GetInt("max-batch", 16);
  server_options.batcher.max_wait_us = flags.GetInt("max-wait-us", 1000);
  server_options.batcher.max_queue = flags.GetInt("max-queue", 256);

  const std::string precision_name = flags.GetString("precision", "fp32");
  if (!serve::PrecisionByName(precision_name,
                              &server_options.engine.precision)) {
    std::fprintf(stderr,
                 "serve: unknown --precision '%s' (want fp32|bf16|int8)\n",
                 precision_name.c_str());
    return 2;
  }
  if (server_options.engine.precision == serve::Precision::kInt8 &&
      !have_data) {
    // Static activation calibration replays dataset prefixes; without it
    // the int8 head would silently serve fp32 forever.
    std::fprintf(stderr, "serve: --precision int8 requires --data "
                         "(int8 activation calibration source)\n");
    return 2;
  }

  // Per-shape autotuning for the serve hot path: the predict-head GEMMs
  // at single-request and full-batch sizes. Winners persist at
  // --autotune-cache keyed by CPU features; a second startup on the same
  // host is pure cache hits. Runs before any shard worker exists, as the
  // tuner briefly drives the process-wide kernel override.
  const std::string autotune_cache = flags.GetString("autotune-cache", "");
  if (!autotune_cache.empty()) {
    const int64_t dim = model->config().dim;
    const int64_t batch = std::max<int64_t>(1, server_options.batcher.max_batch);
    autotune::Options tune_options;
    tune_options.cache_path = autotune_cache;
    const autotune::Result tuned = autotune::TuneShapes(
        {{1, 2 * dim, dim}, {1, dim, 1}, {batch, 2 * dim, dim},
         {batch, dim, 1}},
        tune_options);
    std::fprintf(stderr,
                 "ktcli serve: autotune %d shapes measured, %d cached (%s)\n",
                 tuned.measured, tuned.cached, autotune_cache.c_str());
  }

  // ---- continual learning (kt::continual) ----
  std::unique_ptr<continual::ContinualTrainer> trainer;
  serve::ServeHooks hooks;
  if (flags.GetBool("continual", false)) {
    KT_CHECK(server_options.engine.precision == serve::Precision::kFp32)
        << "--continual requires --precision fp32 (the promotion gate "
           "compares fp32 predictions)";
    continual::TrainerOptions trainer_options;
    trainer_options.dir = flags.GetString("continual-dir", "continual");
    trainer_options.shards = server_options.shards;
    trainer_options.train_every = flags.GetInt("train-every", 256);
    trainer_options.reservoir_capacity = flags.GetInt("reservoir", 2048);
    trainer_options.tail_capacity = flags.GetInt("tail", 512);
    trainer_options.window = flags.GetInt("continual-window", 32);
    trainer_options.min_history = flags.GetInt("continual-min-history", 4);
    trainer_options.holdout_every = flags.GetInt("holdout-every", 8);
    trainer_options.batch_size = flags.GetInt("continual-batch", 32);
    trainer_options.gate_eps = flags.GetDouble("gate-eps", 0.02);
    trainer_options.gate_min_samples = flags.GetInt("gate-min", 64);
    trainer_options.drift_threshold =
        flags.GetDouble("drift-threshold", 0.05);
    trainer_options.lr =
        static_cast<float>(flags.GetDouble("continual-lr", 1e-4));
    trainer_options.seed =
        static_cast<uint64_t>(flags.GetInt("continual-seed", 1));
    trainer_options.poll_ms = flags.GetInt("continual-poll-ms", 20);

    // Resume the incumbent: a previously promoted DIR/current.ktw REPLACES
    // the --load weights, and its meta version seeds the stats counter.
    const std::string current = trainer_options.dir + "/current.ktw";
    bool meta_present = false;
    nn::ModelMeta meta;
    if (nn::ReadModuleMeta(current, &meta_present, &meta).ok() &&
        nn::LoadModule(*model, current).ok()) {
      trainer_options.initial_weight_version =
          meta_present ? meta.weight_version : 0;
      std::fprintf(
          stderr, "ktcli serve: resumed incumbent %s (weight version %lld)\n",
          current.c_str(),
          static_cast<long long>(trainer_options.initial_weight_version));
    }
    server_options.initial_weight_version =
        trainer_options.initial_weight_version;

    trainer =
        std::make_unique<continual::ContinualTrainer>(*model, trainer_options);
    if (trainer->LoadCheckpoint()) {
      std::fprintf(stderr, "ktcli serve: resumed continual trainer from %s\n",
                   (trainer_options.dir + "/continual.ktc").c_str());
    }
    continual::ContinualTrainer& tap = *trainer;
    server_options.engine.update_sink =
        [&tap](int shard, const serve::UpdateEvent& event) {
          tap.Record(shard, event);
        };
    hooks.on_start = [&tap](serve::ShardSet& shards) { tap.Start(&shards); };
    hooks.on_stop = [&tap] { tap.Stop(); };
  }
  server_options.engine.model_fingerprint = nn::FingerprintModule(*model);

  if (server_options.port > 0) {
    std::fprintf(stderr,
                 "ktcli serve: %s on 127.0.0.1:%d (%d shards, %s head%s)\n",
                 model->name().c_str(), server_options.port,
                 server_options.shards,
                 serve::PrecisionName(server_options.engine.precision),
                 trainer != nullptr ? ", continual" : "");
  }
  return serve::RunServer(*model, server_options,
                          have_data ? &loaded.windows : nullptr, hooks);
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  FlagParser flags;
  const Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  // --threads N (or the KT_NUM_THREADS env var) sizes the kt::parallel
  // pool; results are bit-identical for every setting. The returned values
  // carry the checkpoint/resume flags into the train command; the
  // observability flags (--obs / --trace-out / --run-log) take effect here
  // and flush their artifacts through an atexit hook.
  const CommonFlagValues common = ApplyCommonFlags(flags);
  obs::ApplyCommonObsFlags(common);
  // --gemm-kernel lives here rather than in ApplyCommonFlags because
  // kt_core cannot see kt_tensor; the override is process-wide and applies
  // to every subcommand (contract in tensor/gemm.h).
  const std::string gemm_kernel = flags.GetString("gemm-kernel", "");
  if (!gemm_kernel.empty()) {
    GemmKernel kernel;
    if (!GemmKernelByName(gemm_kernel, &kernel)) {
      std::string valid = "auto";
      for (const auto& backend : GemmBackends()) {
        if (backend.dispatchable) valid += "|" + backend.name;
      }
      std::fprintf(stderr, "ktcli: unknown --gemm-kernel '%s' (want %s)\n",
                   gemm_kernel.c_str(), valid.c_str());
      return 2;
    }
    SetGemmKernel(kernel);
    std::fprintf(stderr, "ktcli: gemm kernel override: %s\n",
                 GemmKernelName(kernel));
  }
  const std::string command = argv[1];
  if (command == "simulate") return CmdSimulate(flags);
  if (command == "train") return CmdTrain(flags, common);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "explain") return CmdExplain(flags);
  if (command == "recourse") return CmdRecourse(flags);
  if (command == "serve") return CmdServe(flags);
  return Usage();
}

}  // namespace
}  // namespace kt

int main(int argc, char** argv) { return kt::Main(argc, argv); }
