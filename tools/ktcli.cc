// ktcli — command-line interface to the RCKT library.
//
// Subcommands:
//   simulate  --preset NAME [--scale S] [--seed N] --out data.csv
//             Generate a synthetic dataset and write it as CSV.
//   train     --data data.csv --encoder dkt|sakt|akt|gru [--epochs N]
//             [--dim D] [--lambda L] [--save model.ktw]
//             [--checkpoint-every N --checkpoint ckpt.ktc]
//             [--resume ckpt.ktc]
//             Train RCKT with early stopping; print test AUC/ACC.
//   evaluate  --data data.csv --encoder E --load model.ktw
//             Evaluate a saved model on a dataset.
//   explain   --data data.csv --encoder E --load model.ktw
//             [--student I] [--target T]
//             Print the influence breakdown behind one prediction.
//
// Global flags (any subcommand):
//   --threads N   Size of the kt::parallel thread pool (default: the
//                 KT_NUM_THREADS env var, else hardware concurrency).
//                 Outputs are bit-identical for every value.
//   --checkpoint-every N / --checkpoint PATH / --resume PATH
//                 Crash-safe training checkpoints (kt::ckpt): every N
//                 epochs the full training state (parameters, Adam moments,
//                 RNG streams, progress) is committed atomically to PATH;
//                 --resume restores it and continues bit-identically to an
//                 uninterrupted run. --checkpoint defaults to the --resume
//                 path. Only `train` consumes these.
//   --obs on|off  kt::obs counter/histogram recording plus a summary on
//                 stderr at exit. Off by default; never changes a metric,
//                 loss, or checkpoint byte.
//   --trace-out PATH
//                 Write a Chrome trace-event JSON file at exit (load in
//                 chrome://tracing or Perfetto); implies --obs on.
//   --run-log PATH
//                 Append per-epoch JSONL telemetry (loss, AUC/ACC,
//                 tokens/sec, GEMM FLOPs, checkpoint latency, RSS),
//                 rewritten atomically each epoch; implies --obs on.
//
// Examples:
//   ktcli simulate --preset assist09 --scale 0.2 --out /tmp/a09.csv
//   ktcli train --data /tmp/a09.csv --encoder dkt --save /tmp/m.ktw
//   ktcli explain --data /tmp/a09.csv --encoder dkt --load /tmp/m.ktw
#include <cstdio>
#include <memory>
#include <string>

#include "core/flags.h"
#include "data/io.h"
#include "obs/obs_flags.h"
#include "data/presets.h"
#include "nn/serialize.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"

namespace kt {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ktcli <simulate|train|evaluate|explain> [flags]\n"
               "see the header of tools/ktcli.cc for flag reference\n");
  return 2;
}

rckt::EncoderKind ParseEncoder(const std::string& name) {
  if (name == "dkt") return rckt::EncoderKind::kDKT;
  if (name == "sakt") return rckt::EncoderKind::kSAKT;
  if (name == "akt") return rckt::EncoderKind::kAKT;
  if (name == "gru") return rckt::EncoderKind::kGRU;
  KT_CHECK(false) << "unknown encoder '" << name
                  << "' (want dkt|sakt|akt|gru)";
  return rckt::EncoderKind::kDKT;
}

int CmdSimulate(const FlagParser& flags) {
  const std::string preset = flags.GetString("preset", "assist09");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "simulate: --out is required\n");
    return 2;
  }
  data::SimulatorConfig config =
      data::PresetByName(preset, flags.GetDouble("scale", 0.2));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", config.seed));
  data::StudentSimulator simulator(config);
  data::Dataset dataset = simulator.Generate();
  const Status status = data::SaveCsv(dataset, out);
  if (!status.ok()) {
    std::fprintf(stderr, "simulate: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %lld interactions (%zu students, %.2f correct) to %s\n",
              static_cast<long long>(dataset.TotalResponses()),
              dataset.sequences.size(), dataset.CorrectRate(), out.c_str());
  return 0;
}

// Loads the CSV, windows it, and builds a model shaped for it.
struct LoadedData {
  data::Dataset windows;
};

int LoadData(const FlagParser& flags, LoadedData* out) {
  const std::string path = flags.GetString("data", "");
  if (path.empty()) {
    std::fprintf(stderr, "--data is required\n");
    return 2;
  }
  auto dataset = data::LoadCsv(path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  out->windows = data::SplitIntoWindows(dataset.value(),
                                        flags.GetInt("window", 50),
                                        flags.GetInt("min-length", 5));
  return 0;
}

std::unique_ptr<rckt::RCKT> BuildModel(const FlagParser& flags,
                                       const data::Dataset& windows) {
  rckt::RcktConfig config;
  config.encoder = ParseEncoder(flags.GetString("encoder", "dkt"));
  config.dim = flags.GetInt("dim", 32);
  config.num_layers = flags.GetInt("layers", 1);
  config.lambda = static_cast<float>(flags.GetDouble("lambda", 0.1));
  config.lr = static_cast<float>(flags.GetDouble("lr", 1e-3));
  config.dropout = static_cast<float>(flags.GetDouble("dropout", 0.1));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  return std::make_unique<rckt::RCKT>(windows.num_questions,
                                      windows.num_concepts, config);
}

int CmdTrain(const FlagParser& flags, const CommonFlagValues& common) {
  LoadedData loaded;
  if (int rc = LoadData(flags, &loaded)) return rc;

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(loaded.windows.sequences.size()), 5, rng);
  data::FoldSplit split =
      data::MakeFold(loaded.windows, folds, 0, 0.1, rng);

  std::unique_ptr<rckt::RCKT> model = BuildModel(flags, loaded.windows);
  rckt::RcktTrainOptions options;
  options.max_epochs = static_cast<int>(flags.GetInt("epochs", 8));
  options.patience = static_cast<int>(flags.GetInt("patience", 4));
  options.verbose = flags.GetBool("verbose", true);
  options.checkpoint_every = common.checkpoint_every;
  options.checkpoint_path = common.checkpoint_path;
  options.resume_path = common.resume_path;
  if (options.checkpoint_every > 0 && options.checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "train: --checkpoint-every needs --checkpoint (or --resume) "
                 "to name the checkpoint file\n");
    return 2;
  }
  const auto result = rckt::TrainAndEvaluateRckt(*model, split, options);
  std::printf("%s: test AUC %.4f ACC %.4f (%lld predictions)\n",
              model->name().c_str(), result.test.auc, result.test.acc,
              static_cast<long long>(result.test.num_predictions));

  const std::string save = flags.GetString("save", "");
  if (!save.empty()) {
    const Status status = nn::SaveModule(*model, save);
    if (!status.ok()) {
      std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved model to %s\n", save.c_str());
  }
  return 0;
}

int LoadModel(const FlagParser& flags, rckt::RCKT* model) {
  const std::string load = flags.GetString("load", "");
  if (load.empty()) {
    std::fprintf(stderr, "--load is required\n");
    return 2;
  }
  const Status status = nn::LoadModule(*model, load);
  if (!status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdEvaluate(const FlagParser& flags) {
  LoadedData loaded;
  if (int rc = LoadData(flags, &loaded)) return rc;
  std::unique_ptr<rckt::RCKT> model = BuildModel(flags, loaded.windows);
  if (int rc = LoadModel(flags, model.get())) return rc;

  rckt::RcktTrainOptions options;
  options.eval_stride = flags.GetInt("stride", 4);
  const auto result = rckt::EvaluateRckt(*model, loaded.windows, options);
  std::printf("%s on %s: AUC %.4f ACC %.4f (%lld predictions)\n",
              model->name().c_str(), flags.GetString("data", "").c_str(),
              result.auc, result.acc,
              static_cast<long long>(result.num_predictions));
  return 0;
}

int CmdExplain(const FlagParser& flags) {
  LoadedData loaded;
  if (int rc = LoadData(flags, &loaded)) return rc;
  std::unique_ptr<rckt::RCKT> model = BuildModel(flags, loaded.windows);
  if (int rc = LoadModel(flags, model.get())) return rc;

  const int64_t student_index = flags.GetInt("student", 0);
  KT_CHECK(student_index >= 0 &&
           student_index <
               static_cast<int64_t>(loaded.windows.sequences.size()))
      << "--student out of range";
  const auto& seq =
      loaded.windows.sequences[static_cast<size_t>(student_index)];
  const int64_t target =
      flags.GetInt("target", seq.length() - 1);
  KT_CHECK(target >= 1 && target < seq.length()) << "--target out of range";

  data::Batch batch = rckt::MakePrefixBatch({{&seq, target}});
  const auto explanation = model->ExplainTargets(batch).front();
  std::printf("influences on q%lld at position %lld:\n",
              static_cast<long long>(
                  seq.interactions[static_cast<size_t>(target)].question),
              static_cast<long long>(target));
  for (int64_t t = 0; t < target; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    std::printf("  t=%-3lld q%-5lld %-9s %+0.4f\n",
                static_cast<long long>(t),
                static_cast<long long>(it.question),
                it.response ? "correct" : "wrong",
                explanation.influence[static_cast<size_t>(t)]);
  }
  std::printf("total correct %.4f vs incorrect %.4f -> predict %s "
              "(actual %s)\n",
              explanation.total_correct, explanation.total_incorrect,
              explanation.predicted_correct ? "correct" : "incorrect",
              seq.interactions[static_cast<size_t>(target)].response
                  ? "correct"
                  : "incorrect");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  FlagParser flags;
  const Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  // --threads N (or the KT_NUM_THREADS env var) sizes the kt::parallel
  // pool; results are bit-identical for every setting. The returned values
  // carry the checkpoint/resume flags into the train command; the
  // observability flags (--obs / --trace-out / --run-log) take effect here
  // and flush their artifacts through an atexit hook.
  const CommonFlagValues common = ApplyCommonFlags(flags);
  obs::ApplyCommonObsFlags(common);
  const std::string command = argv[1];
  if (command == "simulate") return CmdSimulate(flags);
  if (command == "train") return CmdTrain(flags, common);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "explain") return CmdExplain(flags);
  return Usage();
}

}  // namespace
}  // namespace kt

int main(int argc, char** argv) { return kt::Main(argc, argv); }
