// Adaptive practice: the downstream application the paper's introduction
// motivates — use RCKT's interpretable outputs to drive question
// recommendation. For a student mid-session we (1) trace proficiency on
// every concept, (2) pick the weakest concept, and (3) rank its candidate
// questions by predicted success probability, recommending one in the
// "zone of proximal development" (closest to 70% success).
//
// Build & run:  ./build/examples/adaptive_practice
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "data/presets.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"

int main() {
  using namespace kt;

  data::StudentSimulator simulator(data::Assist09Preset(/*scale=*/0.2));
  data::Dataset windows = data::SplitIntoWindows(simulator.Generate(), 50, 5);

  Rng rng(7);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, 0, 0.1, rng);

  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 32;
  rckt::RCKT model(windows.num_questions, windows.num_concepts, config);
  rckt::RcktTrainOptions options;
  options.max_epochs = 5;
  options.patience = 3;
  rckt::TrainAndEvaluateRckt(model, split, options);

  // A student mid-session.
  data::ResponseSequence student = simulator.GenerateStudent(15, 4242);
  std::printf("student history (15 responses):");
  for (const auto& it : student.interactions) {
    std::printf(" k%lld%s", static_cast<long long>(it.concepts[0]),
                it.response ? "+" : "-");
  }
  std::printf("\n\n");

  std::map<int64_t, std::vector<int64_t>> concept_questions;
  for (int64_t q = 0; q < windows.num_questions; ++q) {
    for (int64_t k : simulator.question_concepts()[static_cast<size_t>(q)]) {
      concept_questions[k].push_back(q);
    }
  }

  // 1. Proficiency per practiced concept.
  data::ResponseSequence probe_prefix = student;
  probe_prefix.interactions.push_back({0, 0, {0}});
  data::Batch probe_batch = data::MakeBatch({&probe_prefix});
  std::map<int64_t, float> proficiency;
  for (const auto& it : student.interactions) {
    const int64_t k = it.concepts[0];
    if (proficiency.count(k)) continue;
    proficiency[k] =
        model.ScoreConceptProbe(probe_batch, concept_questions[k], k)[0];
  }
  int64_t weakest = proficiency.begin()->first;
  std::printf("traced proficiency:\n");
  for (const auto& [k, p] : proficiency) {
    std::printf("  concept k%-4lld %.3f%s\n", static_cast<long long>(k), p,
                p < proficiency[weakest] ? "" : "");
    if (p < proficiency[weakest]) weakest = k;
  }
  std::printf("weakest concept: k%lld\n\n", static_cast<long long>(weakest));

  // 2. Rank that concept's questions by predicted success probability: for
  // each candidate, append it as the target and score.
  struct Candidate {
    int64_t question;
    float p_correct;
  };
  std::vector<Candidate> candidates;
  for (int64_t q : concept_questions[weakest]) {
    data::ResponseSequence with_target = student;
    with_target.interactions.push_back(
        {q, 0, simulator.question_concepts()[static_cast<size_t>(q)]});
    data::Batch batch = data::MakeBatch({&with_target});
    candidates.push_back({q, model.ScoreTargets(batch)[0]});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.p_correct > b.p_correct;
            });

  std::printf("candidate questions for k%lld (predicted success):\n",
              static_cast<long long>(weakest));
  for (size_t i = 0; i < candidates.size() && i < 8; ++i) {
    std::printf("  q%-4lld p=%.3f\n",
                static_cast<long long>(candidates[i].question),
                candidates[i].p_correct);
  }

  // 3. Recommend the question closest to 70% predicted success.
  const Candidate* recommended = &candidates.front();
  for (const auto& c : candidates) {
    if (std::fabs(c.p_correct - 0.7f) <
        std::fabs(recommended->p_correct - 0.7f)) {
      recommended = &c;
    }
  }
  std::printf(
      "\nrecommended next question: q%lld (predicted success %.3f, "
      "closest to the 0.70 practice sweet spot)\n",
      static_cast<long long>(recommended->question), recommended->p_correct);
  return 0;
}
