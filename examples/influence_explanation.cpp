// Influence explanation: the Fig. 6-style workflow as a library consumer
// would run it — train RCKT-AKT, pick a student whose history is mostly
// wrong answers but whose target is answered correctly, and show how the
// counterfactual response influences justify the prediction.
//
// Build & run:  ./build/examples/influence_explanation
#include <cmath>
#include <cstdio>

#include "data/presets.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"

int main() {
  using namespace kt;

  // Eedi-like synthetic data (multiple-choice math questions).
  data::StudentSimulator simulator(data::EediPreset(/*scale=*/0.2));
  data::Dataset windows = data::SplitIntoWindows(simulator.Generate(), 50, 5);

  Rng rng(7);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, 0, 0.1, rng);

  rckt::RcktConfig config = rckt::RcktConfigFor("eedi", rckt::EncoderKind::kAKT);
  config.dim = 32;
  config.num_layers = 1;
  rckt::RCKT model(windows.num_questions, windows.num_concepts, config);

  rckt::RcktTrainOptions options;
  options.max_epochs = 5;
  options.patience = 3;
  auto trained = rckt::TrainAndEvaluateRckt(model, split, options);
  std::printf("%s trained: test AUC %.4f ACC %.4f\n\n", model.name().c_str(),
              trained.test.auc, trained.test.acc);

  // Find the paper's Fig. 6 situation: more incorrect than correct history,
  // yet the target answered correctly.
  for (const auto& seq : windows.sequences) {
    if (seq.length() < 10) continue;
    const int64_t target = 9;
    if (seq.interactions[9].response != 1) continue;
    int correct = 0;
    for (int64_t t = 0; t < target; ++t) correct += seq.interactions[t].response;
    if (target - correct <= correct) continue;

    data::Batch batch = rckt::MakePrefixBatch({{&seq, target}});
    const auto ex = model.ExplainTargets(batch).front();
    std::printf("history (target concept k%lld):\n",
                static_cast<long long>(seq.interactions[9].concepts[0]));
    for (int64_t t = 0; t < target; ++t) {
      const auto& it = seq.interactions[static_cast<size_t>(t)];
      std::printf("  t=%lld q%-4lld k%-3lld %-9s influence %+.4f%s\n",
                  static_cast<long long>(t),
                  static_cast<long long>(it.question),
                  static_cast<long long>(it.concepts[0]),
                  it.response ? "correct" : "WRONG",
                  ex.influence[static_cast<size_t>(t)],
                  it.concepts[0] == seq.interactions[9].concepts[0]
                      ? "  <- same concept as target"
                      : "");
    }
    std::printf(
        "\ntotal correct %.4f vs incorrect %.4f -> predict %s "
        "(truth: correct)\n",
        ex.total_correct, ex.total_incorrect,
        ex.predicted_correct ? "CORRECT" : "INCORRECT");
    break;
  }
  return 0;
}
