// Concept-proficiency tracing (paper Eq. 30 / Fig. 5): track a student's
// mastery of each knowledge concept over time with the concept probe, and
// compare against the simulator's GROUND-TRUTH latent proficiency — a
// validation real datasets cannot offer.
//
// Build & run:  ./build/examples/proficiency_tracing
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "data/presets.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"

namespace {

// Pearson correlation of two equal-length series.
double Correlation(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return va > 0 && vb > 0 ? cov / std::sqrt(va * vb) : 0.0;
}

}  // namespace

int main() {
  using namespace kt;

  data::StudentSimulator simulator(data::Assist12Preset(/*scale=*/0.2));
  data::Dataset windows = data::SplitIntoWindows(simulator.Generate(), 50, 5);

  Rng rng(7);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, 0, 0.1, rng);

  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 32;
  rckt::RCKT model(windows.num_questions, windows.num_concepts, config);
  rckt::RcktTrainOptions options;
  options.max_epochs = 5;
  options.patience = 3;
  rckt::TrainAndEvaluateRckt(model, split, options);

  // A fresh student with a recorded ground-truth proficiency trajectory.
  data::SimulationTrace trace;
  const int64_t length = 30;
  data::ResponseSequence student =
      simulator.GenerateStudent(length, /*student_seed=*/99991, &trace);

  // Concept -> question pool (for the probe).
  std::map<int64_t, std::vector<int64_t>> concept_questions;
  for (int64_t q = 0; q < windows.num_questions; ++q) {
    for (int64_t k : simulator.question_concepts()[static_cast<size_t>(q)]) {
      concept_questions[k].push_back(q);
    }
  }

  // Trace the student's most-practiced concept.
  std::map<int64_t, int> counts;
  for (const auto& it : student.interactions) counts[it.concepts[0]]++;
  int64_t traced = student.interactions[0].concepts[0];
  for (const auto& [k, c] : counts) {
    if (c > counts[traced]) traced = k;
  }

  std::printf("tracing concept k%lld over %lld responses\n",
              static_cast<long long>(traced), static_cast<long long>(length));
  std::printf("%-4s %-8s %-10s %-12s %-12s\n", "t", "concept", "response",
              "RCKT prof", "true theta");
  std::vector<double> predicted, truth;
  for (int64_t t = 1; t < length; ++t) {
    data::ResponseSequence prefix;
    prefix.interactions.assign(student.interactions.begin(),
                               student.interactions.begin() + t + 1);
    prefix.interactions.push_back({0, 0, {0}});  // probe placeholder
    data::Batch batch = data::MakeBatch({&prefix});
    const float p =
        model.ScoreConceptProbe(batch, concept_questions[traced], traced)[0];
    const double theta =
        trace.proficiency[static_cast<size_t>(t)][static_cast<size_t>(traced)];
    predicted.push_back(p);
    truth.push_back(theta);
    const auto& it = student.interactions[static_cast<size_t>(t)];
    std::printf("%-4lld k%-7lld %-10s %-12.3f %-12.3f\n",
                static_cast<long long>(t),
                static_cast<long long>(it.concepts[0]),
                it.response ? "correct" : "INCORRECT", p, theta);
  }
  std::printf("\ncorrelation(RCKT proficiency, ground-truth theta) = %.3f\n",
              Correlation(predicted, truth));
  return 0;
}
