// Quickstart: generate a small synthetic KT dataset, train RCKT with the
// BiLSTM (DKT) encoder, and print the interpretable influence breakdown for
// one student's target question — the library's core loop in ~100 lines.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/logging.h"
#include "core/string_util.h"
#include "data/presets.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"

int main() {
  using namespace kt;

  // 1. Data: a scaled-down ASSIST09-like synthetic dataset, windowed to 50.
  data::SimulatorConfig sim_config = data::Assist09Preset(/*scale=*/0.25);
  data::StudentSimulator simulator(sim_config);
  data::Dataset raw = simulator.Generate();
  data::Dataset windows = data::SplitIntoWindows(raw, 50, 5);
  std::printf("dataset %s: %lld windows, %lld responses, %.2f correct rate\n",
              windows.name.c_str(),
              static_cast<long long>(windows.sequences.size()),
              static_cast<long long>(windows.TotalResponses()),
              windows.CorrectRate());

  // 2. Split: hold out 20%% of windows for testing, 10%% for validation.
  Rng rng(42);
  const std::vector<int> folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), 5, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, /*test_fold=*/0,
                                         /*validation_fraction=*/0.1, rng);

  // 3. Model: RCKT with the bidirectional LSTM encoder.
  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 32;
  config.num_layers = 1;
  config.lambda = 0.1f;
  rckt::RCKT model(windows.num_questions, windows.num_concepts, config);
  std::printf("%s with %lld parameters\n", model.name().c_str(),
              static_cast<long long>(model.NumParameters()));

  // 4. Train with counterfactual optimization + joint BCE, early stopping.
  rckt::RcktTrainOptions options;
  options.max_epochs = 6;
  options.patience = 3;
  options.verbose = true;
  rckt::RcktTrainResult result =
      rckt::TrainAndEvaluateRckt(model, split, options);
  std::printf("test AUC %.4f  ACC %.4f  (%lld predictions)\n",
              result.test.auc, result.test.acc,
              static_cast<long long>(result.test.num_predictions));

  // 5. Interpret: response influences behind one prediction.
  const data::ResponseSequence& student = split.test.sequences.front();
  rckt::PrefixSample sample{&student, std::min<int64_t>(9, student.length() - 1)};
  data::Batch batch = rckt::MakePrefixBatch({sample});
  const auto explanation = model.ExplainTargets(batch).front();

  std::printf("\ninfluences on the target question (position %lld):\n",
              static_cast<long long>(sample.target));
  for (size_t i = 0; i + 1 < explanation.influence.size(); ++i) {
    std::printf("  q%-4lld answered %-9s influence %+0.4f\n",
                static_cast<long long>(
                    student.interactions[i].question),
                explanation.responses[i] ? "correctly" : "wrong,",
                explanation.influence[i]);
  }
  std::printf(
      "total correct influence %.4f vs incorrect %.4f -> predict %s "
      "(actual: %s)\n",
      explanation.total_correct, explanation.total_incorrect,
      explanation.predicted_correct ? "correct" : "incorrect",
      student.interactions[static_cast<size_t>(sample.target)].response
          ? "correct"
          : "incorrect");
  return 0;
}
