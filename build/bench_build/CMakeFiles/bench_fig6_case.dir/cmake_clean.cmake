file(REMOVE_RECURSE
  "../bench/bench_fig6_case"
  "../bench/bench_fig6_case.pdb"
  "CMakeFiles/bench_fig6_case.dir/bench_fig6_case.cc.o"
  "CMakeFiles/bench_fig6_case.dir/bench_fig6_case.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
