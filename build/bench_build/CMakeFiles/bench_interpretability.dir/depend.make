# Empty dependencies file for bench_interpretability.
# This may be replaced when dependencies are built.
