file(REMOVE_RECURSE
  "../bench/bench_interpretability"
  "../bench/bench_interpretability.pdb"
  "CMakeFiles/bench_interpretability.dir/bench_interpretability.cc.o"
  "CMakeFiles/bench_interpretability.dir/bench_interpretability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interpretability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
