file(REMOVE_RECURSE
  "../bench/bench_table6_approximation"
  "../bench/bench_table6_approximation.pdb"
  "CMakeFiles/bench_table6_approximation.dir/bench_table6_approximation.cc.o"
  "CMakeFiles/bench_table6_approximation.dir/bench_table6_approximation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
