file(REMOVE_RECURSE
  "../bench/bench_table4_overall"
  "../bench/bench_table4_overall.pdb"
  "CMakeFiles/bench_table4_overall.dir/bench_table4_overall.cc.o"
  "CMakeFiles/bench_table4_overall.dir/bench_table4_overall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
