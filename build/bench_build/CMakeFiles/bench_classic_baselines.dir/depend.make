# Empty dependencies file for bench_classic_baselines.
# This may be replaced when dependencies are built.
