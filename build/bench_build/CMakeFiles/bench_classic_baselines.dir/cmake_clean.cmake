file(REMOVE_RECURSE
  "../bench/bench_classic_baselines"
  "../bench/bench_classic_baselines.pdb"
  "CMakeFiles/bench_classic_baselines.dir/bench_classic_baselines.cc.o"
  "CMakeFiles/bench_classic_baselines.dir/bench_classic_baselines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classic_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
