file(REMOVE_RECURSE
  "../bench/bench_fig5_proficiency"
  "../bench/bench_fig5_proficiency.pdb"
  "CMakeFiles/bench_fig5_proficiency.dir/bench_fig5_proficiency.cc.o"
  "CMakeFiles/bench_fig5_proficiency.dir/bench_fig5_proficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_proficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
