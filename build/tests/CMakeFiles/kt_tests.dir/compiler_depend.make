# Empty compiler generated dependencies file for kt_tests.
# This may be replaced when dependencies are built.
