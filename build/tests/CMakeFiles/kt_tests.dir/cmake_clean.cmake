file(REMOVE_RECURSE
  "CMakeFiles/kt_tests.dir/autograd_test.cc.o"
  "CMakeFiles/kt_tests.dir/autograd_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/classic_models_test.cc.o"
  "CMakeFiles/kt_tests.dir/classic_models_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/core_test.cc.o"
  "CMakeFiles/kt_tests.dir/core_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/data_test.cc.o"
  "CMakeFiles/kt_tests.dir/data_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/eval_test.cc.o"
  "CMakeFiles/kt_tests.dir/eval_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/extensions_test.cc.o"
  "CMakeFiles/kt_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/flags_test.cc.o"
  "CMakeFiles/kt_tests.dir/flags_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/integration_test.cc.o"
  "CMakeFiles/kt_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/models_test.cc.o"
  "CMakeFiles/kt_tests.dir/models_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/nn_test.cc.o"
  "CMakeFiles/kt_tests.dir/nn_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/property_test.cc.o"
  "CMakeFiles/kt_tests.dir/property_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/rckt_test.cc.o"
  "CMakeFiles/kt_tests.dir/rckt_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/serialize_test.cc.o"
  "CMakeFiles/kt_tests.dir/serialize_test.cc.o.d"
  "CMakeFiles/kt_tests.dir/tensor_test.cc.o"
  "CMakeFiles/kt_tests.dir/tensor_test.cc.o.d"
  "kt_tests"
  "kt_tests.pdb"
  "kt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
