
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/kt_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/classic_models_test.cc" "tests/CMakeFiles/kt_tests.dir/classic_models_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/classic_models_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/kt_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/kt_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/kt_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/kt_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/kt_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/kt_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/kt_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/kt_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/kt_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rckt_test.cc" "tests/CMakeFiles/kt_tests.dir/rckt_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/rckt_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/kt_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/kt_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/kt_tests.dir/tensor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rckt/CMakeFiles/kt_rckt.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/kt_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/kt_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/kt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/kt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
