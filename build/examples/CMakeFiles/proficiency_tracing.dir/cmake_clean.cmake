file(REMOVE_RECURSE
  "CMakeFiles/proficiency_tracing.dir/proficiency_tracing.cpp.o"
  "CMakeFiles/proficiency_tracing.dir/proficiency_tracing.cpp.o.d"
  "proficiency_tracing"
  "proficiency_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proficiency_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
