# Empty compiler generated dependencies file for proficiency_tracing.
# This may be replaced when dependencies are built.
