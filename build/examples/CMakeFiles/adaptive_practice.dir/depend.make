# Empty dependencies file for adaptive_practice.
# This may be replaced when dependencies are built.
