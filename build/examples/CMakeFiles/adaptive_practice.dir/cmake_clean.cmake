file(REMOVE_RECURSE
  "CMakeFiles/adaptive_practice.dir/adaptive_practice.cpp.o"
  "CMakeFiles/adaptive_practice.dir/adaptive_practice.cpp.o.d"
  "adaptive_practice"
  "adaptive_practice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_practice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
