# Empty compiler generated dependencies file for influence_explanation.
# This may be replaced when dependencies are built.
