file(REMOVE_RECURSE
  "CMakeFiles/influence_explanation.dir/influence_explanation.cpp.o"
  "CMakeFiles/influence_explanation.dir/influence_explanation.cpp.o.d"
  "influence_explanation"
  "influence_explanation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/influence_explanation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
