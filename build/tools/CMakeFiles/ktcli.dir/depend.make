# Empty dependencies file for ktcli.
# This may be replaced when dependencies are built.
