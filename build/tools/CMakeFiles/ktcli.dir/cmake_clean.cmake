file(REMOVE_RECURSE
  "CMakeFiles/ktcli.dir/ktcli.cc.o"
  "CMakeFiles/ktcli.dir/ktcli.cc.o.d"
  "ktcli"
  "ktcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
