
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ktcli.cc" "tools/CMakeFiles/ktcli.dir/ktcli.cc.o" "gcc" "tools/CMakeFiles/ktcli.dir/ktcli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rckt/CMakeFiles/kt_rckt.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/kt_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/kt_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/kt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/kt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
