file(REMOVE_RECURSE
  "libkt_rckt.a"
)
