
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rckt/counterfactual.cc" "src/rckt/CMakeFiles/kt_rckt.dir/counterfactual.cc.o" "gcc" "src/rckt/CMakeFiles/kt_rckt.dir/counterfactual.cc.o.d"
  "/root/repo/src/rckt/encoders.cc" "src/rckt/CMakeFiles/kt_rckt.dir/encoders.cc.o" "gcc" "src/rckt/CMakeFiles/kt_rckt.dir/encoders.cc.o.d"
  "/root/repo/src/rckt/interpretability.cc" "src/rckt/CMakeFiles/kt_rckt.dir/interpretability.cc.o" "gcc" "src/rckt/CMakeFiles/kt_rckt.dir/interpretability.cc.o.d"
  "/root/repo/src/rckt/rckt_model.cc" "src/rckt/CMakeFiles/kt_rckt.dir/rckt_model.cc.o" "gcc" "src/rckt/CMakeFiles/kt_rckt.dir/rckt_model.cc.o.d"
  "/root/repo/src/rckt/rckt_trainer.cc" "src/rckt/CMakeFiles/kt_rckt.dir/rckt_trainer.cc.o" "gcc" "src/rckt/CMakeFiles/kt_rckt.dir/rckt_trainer.cc.o.d"
  "/root/repo/src/rckt/samples.cc" "src/rckt/CMakeFiles/kt_rckt.dir/samples.cc.o" "gcc" "src/rckt/CMakeFiles/kt_rckt.dir/samples.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/kt_models.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/kt_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/kt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/kt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
