# Empty compiler generated dependencies file for kt_rckt.
# This may be replaced when dependencies are built.
