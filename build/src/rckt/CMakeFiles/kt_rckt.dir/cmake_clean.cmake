file(REMOVE_RECURSE
  "CMakeFiles/kt_rckt.dir/counterfactual.cc.o"
  "CMakeFiles/kt_rckt.dir/counterfactual.cc.o.d"
  "CMakeFiles/kt_rckt.dir/encoders.cc.o"
  "CMakeFiles/kt_rckt.dir/encoders.cc.o.d"
  "CMakeFiles/kt_rckt.dir/interpretability.cc.o"
  "CMakeFiles/kt_rckt.dir/interpretability.cc.o.d"
  "CMakeFiles/kt_rckt.dir/rckt_model.cc.o"
  "CMakeFiles/kt_rckt.dir/rckt_model.cc.o.d"
  "CMakeFiles/kt_rckt.dir/rckt_trainer.cc.o"
  "CMakeFiles/kt_rckt.dir/rckt_trainer.cc.o.d"
  "CMakeFiles/kt_rckt.dir/samples.cc.o"
  "CMakeFiles/kt_rckt.dir/samples.cc.o.d"
  "libkt_rckt.a"
  "libkt_rckt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kt_rckt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
