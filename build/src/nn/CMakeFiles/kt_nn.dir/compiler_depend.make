# Empty compiler generated dependencies file for kt_nn.
# This may be replaced when dependencies are built.
