
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cc" "src/nn/CMakeFiles/kt_nn.dir/adam.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/adam.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/kt_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/kt_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/kt_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/kt_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/kt_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/kt_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/losses.cc" "src/nn/CMakeFiles/kt_nn.dir/losses.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/losses.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/kt_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/kt_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/kt_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/kt_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/kt_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/kt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
