file(REMOVE_RECURSE
  "CMakeFiles/kt_nn.dir/adam.cc.o"
  "CMakeFiles/kt_nn.dir/adam.cc.o.d"
  "CMakeFiles/kt_nn.dir/attention.cc.o"
  "CMakeFiles/kt_nn.dir/attention.cc.o.d"
  "CMakeFiles/kt_nn.dir/embedding.cc.o"
  "CMakeFiles/kt_nn.dir/embedding.cc.o.d"
  "CMakeFiles/kt_nn.dir/gru.cc.o"
  "CMakeFiles/kt_nn.dir/gru.cc.o.d"
  "CMakeFiles/kt_nn.dir/init.cc.o"
  "CMakeFiles/kt_nn.dir/init.cc.o.d"
  "CMakeFiles/kt_nn.dir/layer_norm.cc.o"
  "CMakeFiles/kt_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/kt_nn.dir/linear.cc.o"
  "CMakeFiles/kt_nn.dir/linear.cc.o.d"
  "CMakeFiles/kt_nn.dir/losses.cc.o"
  "CMakeFiles/kt_nn.dir/losses.cc.o.d"
  "CMakeFiles/kt_nn.dir/lstm.cc.o"
  "CMakeFiles/kt_nn.dir/lstm.cc.o.d"
  "CMakeFiles/kt_nn.dir/module.cc.o"
  "CMakeFiles/kt_nn.dir/module.cc.o.d"
  "CMakeFiles/kt_nn.dir/serialize.cc.o"
  "CMakeFiles/kt_nn.dir/serialize.cc.o.d"
  "libkt_nn.a"
  "libkt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
