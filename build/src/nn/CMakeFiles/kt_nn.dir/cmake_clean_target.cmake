file(REMOVE_RECURSE
  "libkt_nn.a"
)
