file(REMOVE_RECURSE
  "CMakeFiles/kt_autograd.dir/grad_check.cc.o"
  "CMakeFiles/kt_autograd.dir/grad_check.cc.o.d"
  "CMakeFiles/kt_autograd.dir/ops.cc.o"
  "CMakeFiles/kt_autograd.dir/ops.cc.o.d"
  "CMakeFiles/kt_autograd.dir/variable.cc.o"
  "CMakeFiles/kt_autograd.dir/variable.cc.o.d"
  "libkt_autograd.a"
  "libkt_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kt_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
