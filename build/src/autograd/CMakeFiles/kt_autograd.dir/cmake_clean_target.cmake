file(REMOVE_RECURSE
  "libkt_autograd.a"
)
