# Empty compiler generated dependencies file for kt_autograd.
# This may be replaced when dependencies are built.
