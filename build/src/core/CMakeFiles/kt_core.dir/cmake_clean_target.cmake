file(REMOVE_RECURSE
  "libkt_core.a"
)
