# Empty compiler generated dependencies file for kt_core.
# This may be replaced when dependencies are built.
