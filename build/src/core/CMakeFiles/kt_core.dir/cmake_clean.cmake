file(REMOVE_RECURSE
  "CMakeFiles/kt_core.dir/flags.cc.o"
  "CMakeFiles/kt_core.dir/flags.cc.o.d"
  "CMakeFiles/kt_core.dir/logging.cc.o"
  "CMakeFiles/kt_core.dir/logging.cc.o.d"
  "CMakeFiles/kt_core.dir/rng.cc.o"
  "CMakeFiles/kt_core.dir/rng.cc.o.d"
  "CMakeFiles/kt_core.dir/status.cc.o"
  "CMakeFiles/kt_core.dir/status.cc.o.d"
  "CMakeFiles/kt_core.dir/string_util.cc.o"
  "CMakeFiles/kt_core.dir/string_util.cc.o.d"
  "CMakeFiles/kt_core.dir/table_printer.cc.o"
  "CMakeFiles/kt_core.dir/table_printer.cc.o.d"
  "libkt_core.a"
  "libkt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
