file(REMOVE_RECURSE
  "CMakeFiles/kt_models.dir/akt.cc.o"
  "CMakeFiles/kt_models.dir/akt.cc.o.d"
  "CMakeFiles/kt_models.dir/bkt.cc.o"
  "CMakeFiles/kt_models.dir/bkt.cc.o.d"
  "CMakeFiles/kt_models.dir/difficulty.cc.o"
  "CMakeFiles/kt_models.dir/difficulty.cc.o.d"
  "CMakeFiles/kt_models.dir/dimkt.cc.o"
  "CMakeFiles/kt_models.dir/dimkt.cc.o.d"
  "CMakeFiles/kt_models.dir/dkt.cc.o"
  "CMakeFiles/kt_models.dir/dkt.cc.o.d"
  "CMakeFiles/kt_models.dir/embedder.cc.o"
  "CMakeFiles/kt_models.dir/embedder.cc.o.d"
  "CMakeFiles/kt_models.dir/ikt.cc.o"
  "CMakeFiles/kt_models.dir/ikt.cc.o.d"
  "CMakeFiles/kt_models.dir/kt_model.cc.o"
  "CMakeFiles/kt_models.dir/kt_model.cc.o.d"
  "CMakeFiles/kt_models.dir/ktm.cc.o"
  "CMakeFiles/kt_models.dir/ktm.cc.o.d"
  "CMakeFiles/kt_models.dir/neural_base.cc.o"
  "CMakeFiles/kt_models.dir/neural_base.cc.o.d"
  "CMakeFiles/kt_models.dir/pfa.cc.o"
  "CMakeFiles/kt_models.dir/pfa.cc.o.d"
  "CMakeFiles/kt_models.dir/qikt.cc.o"
  "CMakeFiles/kt_models.dir/qikt.cc.o.d"
  "CMakeFiles/kt_models.dir/sakt.cc.o"
  "CMakeFiles/kt_models.dir/sakt.cc.o.d"
  "libkt_models.a"
  "libkt_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kt_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
