# Empty dependencies file for kt_models.
# This may be replaced when dependencies are built.
