file(REMOVE_RECURSE
  "libkt_models.a"
)
