
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/akt.cc" "src/models/CMakeFiles/kt_models.dir/akt.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/akt.cc.o.d"
  "/root/repo/src/models/bkt.cc" "src/models/CMakeFiles/kt_models.dir/bkt.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/bkt.cc.o.d"
  "/root/repo/src/models/difficulty.cc" "src/models/CMakeFiles/kt_models.dir/difficulty.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/difficulty.cc.o.d"
  "/root/repo/src/models/dimkt.cc" "src/models/CMakeFiles/kt_models.dir/dimkt.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/dimkt.cc.o.d"
  "/root/repo/src/models/dkt.cc" "src/models/CMakeFiles/kt_models.dir/dkt.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/dkt.cc.o.d"
  "/root/repo/src/models/embedder.cc" "src/models/CMakeFiles/kt_models.dir/embedder.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/embedder.cc.o.d"
  "/root/repo/src/models/ikt.cc" "src/models/CMakeFiles/kt_models.dir/ikt.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/ikt.cc.o.d"
  "/root/repo/src/models/kt_model.cc" "src/models/CMakeFiles/kt_models.dir/kt_model.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/kt_model.cc.o.d"
  "/root/repo/src/models/ktm.cc" "src/models/CMakeFiles/kt_models.dir/ktm.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/ktm.cc.o.d"
  "/root/repo/src/models/neural_base.cc" "src/models/CMakeFiles/kt_models.dir/neural_base.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/neural_base.cc.o.d"
  "/root/repo/src/models/pfa.cc" "src/models/CMakeFiles/kt_models.dir/pfa.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/pfa.cc.o.d"
  "/root/repo/src/models/qikt.cc" "src/models/CMakeFiles/kt_models.dir/qikt.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/qikt.cc.o.d"
  "/root/repo/src/models/sakt.cc" "src/models/CMakeFiles/kt_models.dir/sakt.cc.o" "gcc" "src/models/CMakeFiles/kt_models.dir/sakt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/kt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/kt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/kt_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/kt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
