file(REMOVE_RECURSE
  "libkt_eval.a"
)
