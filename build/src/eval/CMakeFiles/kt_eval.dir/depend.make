# Empty dependencies file for kt_eval.
# This may be replaced when dependencies are built.
