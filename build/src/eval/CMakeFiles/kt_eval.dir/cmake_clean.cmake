file(REMOVE_RECURSE
  "CMakeFiles/kt_eval.dir/metrics.cc.o"
  "CMakeFiles/kt_eval.dir/metrics.cc.o.d"
  "CMakeFiles/kt_eval.dir/trainer.cc.o"
  "CMakeFiles/kt_eval.dir/trainer.cc.o.d"
  "CMakeFiles/kt_eval.dir/ttest.cc.o"
  "CMakeFiles/kt_eval.dir/ttest.cc.o.d"
  "libkt_eval.a"
  "libkt_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
