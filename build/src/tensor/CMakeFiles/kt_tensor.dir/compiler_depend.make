# Empty compiler generated dependencies file for kt_tensor.
# This may be replaced when dependencies are built.
