file(REMOVE_RECURSE
  "libkt_tensor.a"
)
