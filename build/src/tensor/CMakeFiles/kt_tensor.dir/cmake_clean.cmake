file(REMOVE_RECURSE
  "CMakeFiles/kt_tensor.dir/gemm.cc.o"
  "CMakeFiles/kt_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/kt_tensor.dir/tensor.cc.o"
  "CMakeFiles/kt_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/kt_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/kt_tensor.dir/tensor_ops.cc.o.d"
  "libkt_tensor.a"
  "libkt_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kt_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
