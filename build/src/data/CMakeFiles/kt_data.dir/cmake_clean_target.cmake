file(REMOVE_RECURSE
  "libkt_data.a"
)
