# Empty dependencies file for kt_data.
# This may be replaced when dependencies are built.
