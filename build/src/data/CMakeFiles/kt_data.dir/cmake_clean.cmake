file(REMOVE_RECURSE
  "CMakeFiles/kt_data.dir/batch.cc.o"
  "CMakeFiles/kt_data.dir/batch.cc.o.d"
  "CMakeFiles/kt_data.dir/dataset.cc.o"
  "CMakeFiles/kt_data.dir/dataset.cc.o.d"
  "CMakeFiles/kt_data.dir/io.cc.o"
  "CMakeFiles/kt_data.dir/io.cc.o.d"
  "CMakeFiles/kt_data.dir/presets.cc.o"
  "CMakeFiles/kt_data.dir/presets.cc.o.d"
  "CMakeFiles/kt_data.dir/simulator.cc.o"
  "CMakeFiles/kt_data.dir/simulator.cc.o.d"
  "libkt_data.a"
  "libkt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
