
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/batch.cc" "src/data/CMakeFiles/kt_data.dir/batch.cc.o" "gcc" "src/data/CMakeFiles/kt_data.dir/batch.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/kt_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/kt_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/kt_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/kt_data.dir/io.cc.o.d"
  "/root/repo/src/data/presets.cc" "src/data/CMakeFiles/kt_data.dir/presets.cc.o" "gcc" "src/data/CMakeFiles/kt_data.dir/presets.cc.o.d"
  "/root/repo/src/data/simulator.cc" "src/data/CMakeFiles/kt_data.dir/simulator.cc.o" "gcc" "src/data/CMakeFiles/kt_data.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/kt_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
